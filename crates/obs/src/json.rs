//! Hand-rolled JSON: string escaping plus a small recursive-descent
//! parser (no serde in the workspace).
//!
//! The escaping side has been audited against RFC 8259: every control
//! character below `0x20` is escaped (`\n`, `\r`, `\t`, `\b`, `\f` get
//! their short forms, the rest `\u00XX`), quotes and backslashes are
//! escaped, and non-finite floats — which JSON cannot represent — are
//! emitted as `null`. The parser exists so consumers (the event-schema
//! linter, the perf-trend tool, the round-trip proptest) can read what the
//! writers produce without external dependencies; it accepts exactly RFC
//! 8259 JSON and preserves number text verbatim, so `u64` values above
//! 2^53 survive a round trip.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping control
/// characters, quotes and backslashes per RFC 8259.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` as a JSON number. Non-finite floats, which JSON
/// cannot represent, are emitted as `null`.
pub fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's float Display prints the shortest string that parses back
        // to the same bits, so encode → decode round-trips losslessly.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// A JSON number, kept as its source text so integer precision beyond
/// `f64`'s 53-bit mantissa is never silently lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonNumber(String);

impl JsonNumber {
    /// The raw number text as it appeared in the document.
    pub fn raw(&self) -> &str {
        &self.0
    }

    /// The number as `f64` (always succeeds for valid JSON numbers,
    /// possibly with rounding).
    pub fn as_f64(&self) -> f64 {
        self.0.parse().unwrap_or(f64::NAN)
    }

    /// The number as `u64`, when it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.parse().ok()
    }

    /// The number as `i64`, when it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.parse().ok()
    }
}

/// A parsed JSON value. Objects preserve member order (and duplicates, so
/// a linter can flag them); numbers preserve their source text.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as text (see [`JsonNumber`]).
    Number(JsonNumber),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: ordered `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

/// Why a document failed to parse: a message and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The member named `key`, for objects (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a path of object keys.
    pub fn pointer(&self, path: &[&str]) -> Option<&JsonValue> {
        path.iter().try_fold(self, |v, key| v.get(key))
    }

    /// The string payload, for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, for numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as exact `u64`, for integral numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean payload, for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, for arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, for objects.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes copied as one str slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run
                // breaks only at ASCII bytes, so the slice is valid too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let value =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("non-hex in \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.error("expected digits in number"));
        }
        // Leading zeros are invalid JSON ("01"), a bare "0" is fine.
        if self.bytes[digits_from] == b'0' && self.pos - digits_from > 1 {
            return Err(self.error("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(JsonValue::Number(JsonNumber(text.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_json_string(&mut out, s);
        out
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escaped("hello"), "\"hello\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(escaped("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
        assert_eq!(escaped("\u{08}\u{0C}"), "\"\\b\\f\"");
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(escaped("τ′ → β"), "\"τ′ → β\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_json_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }

    #[test]
    fn parser_handles_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn parser_preserves_u64_precision() {
        let v = JsonValue::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parser_handles_nesting_and_order() {
        let v = JsonValue::parse(r#"{"a":[1,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.pointer(&["a"]).unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.pointer(&["a"])
                .and_then(|a| a.as_array())
                .and_then(|a| a[1].get("b"))
                .and_then(|b| b.as_str()),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "a");
        assert_eq!(members[1].0, "d");
    }

    #[test]
    fn parser_unescapes_strings() {
        let v = JsonValue::parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        // Surrogate pair: 🚀 is U+1F680.
        let v = JsonValue::parse(r#""\ud83d\ude80""#).unwrap();
        assert_eq!(v.as_str(), Some("🚀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":1,}",
            "[1]]",
            "nullx",
            "\"\u{01}\"",
            r#""\ud83d""#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escaped_strings_round_trip_through_parser() {
        for s in [
            "",
            "plain",
            "a\"b\\c",
            "line\none\r\ttwo",
            "\u{08}\u{0C}\u{01}\u{1f}",
            "τ′ → β 🚀",
            "ends with backslash \\",
        ] {
            let doc = escaped(s);
            assert_eq!(
                JsonValue::parse(&doc).unwrap(),
                JsonValue::String(s.to_string()),
                "round-trip failed for {s:?}"
            );
        }
    }
}
