//! Hand-rolled JSON string escaping (no serde in the workspace).

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping control
/// characters, quotes and backslashes per RFC 8259.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` as a JSON number. Non-finite floats, which JSON
/// cannot represent, are emitted as `null`.
pub(crate) fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_json_string(&mut out, s);
        out
    }

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escaped("hello"), "\"hello\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(escaped("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
        assert_eq!(escaped("\u{08}\u{0C}"), "\"\\b\\f\"");
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(escaped("τ′ → β"), "\"τ′ → β\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_json_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }
}
