//! Zero-dependency telemetry for the secloc workspace.
//!
//! The paper's claims are rates measured over noisy pipelines — detection
//! rate, false positives, N′ — and tuning them at production scale needs
//! visibility *inside* a run, not just the end-of-run outcome. This crate
//! supplies that visibility with four building blocks, none of which pull
//! in external dependencies (the build environment is offline):
//!
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s (with p50/p90/p99 estimation) behind cheap cloneable
//!   handles, safe to update from hot paths;
//! - [`Span`] / [`Stopwatch`] — wall-clock phase timing that lands in
//!   histograms and events;
//! - [`EventSink`] — structured event export with a JSONL file sink
//!   ([`JsonlSink`]), an in-memory sink for tests ([`MemorySink`]), a
//!   bounded post-mortem ring ([`FlightRecorder`]), a broadcast combinator
//!   ([`FanoutSink`]) and hand-rolled JSON (module [`json`], no serde);
//! - [`health`] — pluggable detectors over the event stream (stalled
//!   streams, counter anomalies, cache-hit collapse, checkpoint gaps)
//!   surfaced as `health.*` events.
//!
//! The [`Obs`] facade bundles an optional registry with an optional sink so
//! instrumented code pays almost nothing when observability is off:
//!
//! ```
//! use secloc_obs::{MemorySink, MetricsRegistry, Obs, Value};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
//!
//! obs.incr("demo.widgets");
//! obs.emit("demo", &[("widgets", Value::U64(1))]);
//!
//! assert_eq!(registry.snapshot().counter("demo.widgets"), Some(1));
//! assert_eq!(sink.kinds(), vec!["demo".to_string()]);
//!
//! // Disabled observability is a couple of `Option` checks per call.
//! let off = Obs::disabled();
//! off.incr("demo.widgets"); // no-op
//! ```
//!
//! ## Tracing
//!
//! [`Obs::scoped`] returns a facade stamped with a [`SpanContext`] and a set
//! of standard fields (in the sweep: the cell key and seed). Every event the
//! scoped facade emits carries the trace coordinates plus those fields, so
//! a JSONL stream from a thousand-cell sweep can be sliced back into
//! per-cell narratives:
//!
//! ```
//! use secloc_obs::{MemorySink, Obs, SpanContext, Value};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::with_sink(sink.clone());
//! let cell = obs.scoped(
//!     SpanContext::root(0xc0ffee),
//!     &[("cell", Value::Str("0000000000c0ffee".into()))],
//! );
//! cell.emit("cell.start", &[]);
//! let events = sink.events();
//! assert_eq!(events[0].ctx.unwrap().trace_id, 0xc0ffee);
//! assert!(events[0].field("cell").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod health;
pub mod json;
mod metrics;
pub mod output;
mod span;

pub use event::{
    Event, EventSink, FanoutSink, FlightRecorder, JsonlSink, MemorySink, SpanContext, Value,
};
pub use health::{HealthAlert, HealthDetector, HealthMonitor};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot};
pub use span::{Span, Stopwatch};

use std::sync::Arc;

/// The per-scope state carried by a scoped [`Obs`]: trace coordinates plus
/// standard fields appended to every emitted event.
#[derive(Debug)]
struct ObsScope {
    ctx: SpanContext,
    fields: Vec<(String, Value)>,
}

/// The observability facade handed through instrumented code paths.
///
/// Holds an optional [`MetricsRegistry`] and an optional [`EventSink`];
/// every method is a no-op (an `Option` check) when the corresponding half
/// is absent, so uninstrumented callers pass [`Obs::disabled`] and pay
/// near-zero cost.
#[derive(Clone, Default)]
pub struct Obs {
    metrics: Option<Arc<MetricsRegistry>>,
    sink: Option<Arc<dyn EventSink + Send + Sync>>,
    scope: Option<Arc<ObsScope>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.metrics.is_some())
            .field("sink", &self.sink.is_some())
            .field("scope", &self.scope.is_some())
            .finish()
    }
}

impl Obs {
    /// Observability with both halves attached (either may be `None`).
    pub fn new(
        metrics: Option<Arc<MetricsRegistry>>,
        sink: Option<Arc<dyn EventSink + Send + Sync>>,
    ) -> Self {
        Obs {
            metrics,
            sink,
            scope: None,
        }
    }

    /// The no-op facade: all methods return immediately.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Metrics only.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        Obs {
            metrics: Some(metrics),
            sink: None,
            scope: None,
        }
    }

    /// Events only.
    pub fn with_sink(sink: Arc<dyn EventSink + Send + Sync>) -> Self {
        Obs {
            metrics: None,
            sink: Some(sink),
            scope: None,
        }
    }

    /// Whether any half is attached.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.sink.is_some()
    }

    /// Whether an event sink is attached. Callers constructing expensive
    /// per-event field vectors (per-alert decision events, say) should gate
    /// on this so metrics-only and disabled facades skip the allocation.
    pub fn sink_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The attached event sink, if any — for composing it into a
    /// [`FanoutSink`] alongside additional sinks (a flight recorder, say).
    pub fn sink(&self) -> Option<&Arc<dyn EventSink + Send + Sync>> {
        self.sink.as_ref()
    }

    /// The active span context, if this facade is scoped.
    pub fn span_context(&self) -> Option<SpanContext> {
        self.scope.as_ref().map(|s| s.ctx)
    }

    /// A facade that stamps `ctx` and appends `fields` to every event it
    /// emits. Metrics are unaffected (counters stay global across the
    /// sweep). When no sink is attached the scope is not allocated at all —
    /// the clone behaves exactly like `self`.
    pub fn scoped(&self, ctx: SpanContext, fields: &[(&str, Value)]) -> Obs {
        let mut scoped = self.clone();
        if scoped.sink.is_some() {
            scoped.scope = Some(Arc::new(ObsScope {
                ctx,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            }));
        }
        scoped
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.counter(name).incr();
        }
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(m) = &self.metrics {
            m.counter(name).add(n);
        }
    }

    /// Records `value` into the named histogram (default time buckets).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.histogram(name, Histogram::DEFAULT_TIME_BOUNDS_NS)
                .observe(value);
        }
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: i64) {
        if let Some(m) = &self.metrics {
            m.gauge(name).set(value);
        }
    }

    /// Emits a structured event when a sink is attached. A scoped facade
    /// stamps its span context and appends its standard fields.
    pub fn emit(&self, kind: &str, fields: &[(&str, Value)]) {
        if let Some(sink) = &self.sink {
            sink.emit(&self.build_event(kind, fields));
        }
    }

    fn build_event(&self, kind: &str, fields: &[(&str, Value)]) -> Event {
        let mut event = Event::new(kind, fields);
        if let Some(scope) = &self.scope {
            event.ctx = Some(scope.ctx);
            // Call-site fields win over scope defaults: skip any standard
            // field the emitter already supplied (e.g. `seed` in run.start).
            event.fields.extend(
                scope
                    .fields
                    .iter()
                    .filter(|(key, _)| !fields.iter().any(|(k, _)| *k == key.as_str()))
                    .cloned(),
            );
        }
        event
    }

    /// Starts a named span: on [`Span::finish`] (or drop) the elapsed time
    /// lands in histogram `span.<name>.ns` and a `span` event is emitted.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::enter(self, name)
    }

    pub(crate) fn record_span(&self, name: &str, nanos: u64) {
        if let Some(m) = &self.metrics {
            m.histogram(
                &format!("span.{name}.ns"),
                Histogram::DEFAULT_TIME_BOUNDS_NS,
            )
            .observe(nanos as f64);
        }
        if let Some(sink) = &self.sink {
            let mut event = self.build_event(
                "span",
                &[
                    ("name", Value::Str(name.to_string())),
                    ("nanos", Value::U64(nanos)),
                ],
            );
            // A span event gets its own child span id under the scope, so
            // phase spans nest beneath the cell's root span.
            if let Some(scope) = &self.scope {
                event.ctx = Some(scope.ctx.child(name));
            }
            sink.emit(&event);
        }
    }

    /// Flushes the sink, if one is attached.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert!(!obs.sink_attached());
        obs.incr("a");
        obs.add("a", 5);
        obs.observe("h", 1.0);
        obs.set_gauge("g", 3);
        obs.emit("kind", &[]);
        obs.flush();
        let span = obs.span("phase");
        span.finish();
        // Scoping a disabled facade allocates nothing and stays inert.
        let scoped = obs.scoped(SpanContext::root(1), &[("k", Value::U64(1))]);
        assert!(scoped.span_context().is_none());
        scoped.emit("kind", &[]);
    }

    #[test]
    fn facade_routes_to_registry_and_sink() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
        assert!(obs.enabled());
        assert!(obs.sink_attached());
        obs.incr("c");
        obs.add("c", 2);
        obs.set_gauge("g", -4);
        obs.observe("h", 123.0);
        obs.emit("evt", &[("x", Value::I64(-1))]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-4));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(sink.kinds(), vec!["evt".to_string()]);
    }

    #[test]
    fn span_records_histogram_and_event() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
        obs.span("work").finish();
        {
            let _implicit = obs.span("dropped");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("span.work.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("span.dropped.ns").unwrap().count, 1);
        assert_eq!(sink.kinds(), vec!["span".to_string(), "span".to_string()]);
    }

    #[test]
    fn scoped_facade_stamps_context_and_standard_fields() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        let ctx = SpanContext::root(0xfeed);
        let cell = obs.scoped(
            ctx,
            &[
                ("cell", Value::Str("000000000000feed".into())),
                ("seed", Value::U64(7)),
            ],
        );
        assert_eq!(cell.span_context(), Some(ctx));
        cell.emit("cell.start", &[("extra", Value::Bool(true))]);
        cell.span("phase_x").finish();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Scope fields ride after the call-site fields on every event.
        for event in &events {
            assert_eq!(event.ctx.unwrap().trace_id, 0xfeed);
            assert_eq!(
                event.field("cell"),
                Some(&Value::Str("000000000000feed".into()))
            );
            assert_eq!(event.field("seed"), Some(&Value::U64(7)));
        }
        assert_eq!(events[0].field("extra"), Some(&Value::Bool(true)));
        // The span event nests under the scope root.
        assert_eq!(events[1].ctx.unwrap().parent_id, Some(ctx.span_id));
        assert_ne!(events[1].ctx.unwrap().span_id, ctx.span_id);
        // The unscoped facade is unaffected.
        obs.emit("plain", &[]);
        assert!(sink.events()[2].ctx.is_none());
    }
}
