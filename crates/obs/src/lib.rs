//! Zero-dependency telemetry for the secloc workspace.
//!
//! The paper's claims are rates measured over noisy pipelines — detection
//! rate, false positives, N′ — and tuning them at production scale needs
//! visibility *inside* a run, not just the end-of-run outcome. This crate
//! supplies that visibility with three building blocks, none of which pull
//! in external dependencies (the build environment is offline):
//!
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s (with p50/p90/p99 estimation) behind cheap cloneable
//!   handles, safe to update from hot paths;
//! - [`Span`] / [`Stopwatch`] — wall-clock phase timing that lands in
//!   histograms and events;
//! - [`EventSink`] — structured event export, with a JSONL file sink
//!   ([`JsonlSink`]), an in-memory sink for tests ([`MemorySink`]), and
//!   hand-rolled JSON escaping (no serde).
//!
//! The [`Obs`] facade bundles an optional registry with an optional sink so
//! instrumented code pays almost nothing when observability is off:
//!
//! ```
//! use secloc_obs::{MemorySink, MetricsRegistry, Obs, Value};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let sink = Arc::new(MemorySink::new());
//! let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
//!
//! obs.incr("demo.widgets");
//! obs.emit("demo", &[("widgets", Value::U64(1))]);
//!
//! assert_eq!(registry.snapshot().counter("demo.widgets"), Some(1));
//! assert_eq!(sink.kinds(), vec!["demo".to_string()]);
//!
//! // Disabled observability is a couple of `Option` checks per call.
//! let off = Obs::disabled();
//! off.incr("demo.widgets"); // no-op
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
pub mod output;
mod span;

pub use event::{Event, EventSink, JsonlSink, MemorySink, Value};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot};
pub use span::{Span, Stopwatch};

use std::sync::Arc;

/// The observability facade handed through instrumented code paths.
///
/// Holds an optional [`MetricsRegistry`] and an optional [`EventSink`];
/// every method is a no-op (an `Option` check) when the corresponding half
/// is absent, so uninstrumented callers pass [`Obs::disabled`] and pay
/// near-zero cost.
#[derive(Clone, Default)]
pub struct Obs {
    metrics: Option<Arc<MetricsRegistry>>,
    sink: Option<Arc<dyn EventSink + Send + Sync>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.metrics.is_some())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Obs {
    /// Observability with both halves attached (either may be `None`).
    pub fn new(
        metrics: Option<Arc<MetricsRegistry>>,
        sink: Option<Arc<dyn EventSink + Send + Sync>>,
    ) -> Self {
        Obs { metrics, sink }
    }

    /// The no-op facade: all methods return immediately.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Metrics only.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        Obs {
            metrics: Some(metrics),
            sink: None,
        }
    }

    /// Events only.
    pub fn with_sink(sink: Arc<dyn EventSink + Send + Sync>) -> Self {
        Obs {
            metrics: None,
            sink: Some(sink),
        }
    }

    /// Whether any half is attached.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.sink.is_some()
    }

    /// The attached registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.counter(name).incr();
        }
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(m) = &self.metrics {
            m.counter(name).add(n);
        }
    }

    /// Records `value` into the named histogram (default time buckets).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.histogram(name, Histogram::DEFAULT_TIME_BOUNDS_NS)
                .observe(value);
        }
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: i64) {
        if let Some(m) = &self.metrics {
            m.gauge(name).set(value);
        }
    }

    /// Emits a structured event when a sink is attached.
    pub fn emit(&self, kind: &str, fields: &[(&str, Value)]) {
        if let Some(sink) = &self.sink {
            sink.emit(&Event::new(kind, fields));
        }
    }

    /// Starts a named span: on [`Span::finish`] (or drop) the elapsed time
    /// lands in histogram `span.<name>.ns` and a `span` event is emitted.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::enter(self, name)
    }

    pub(crate) fn record_span(&self, name: &str, nanos: u64) {
        if let Some(m) = &self.metrics {
            m.histogram(
                &format!("span.{name}.ns"),
                Histogram::DEFAULT_TIME_BOUNDS_NS,
            )
            .observe(nanos as f64);
        }
        if let Some(sink) = &self.sink {
            sink.emit(&Event::new(
                "span",
                &[
                    ("name", Value::Str(name.to_string())),
                    ("nanos", Value::U64(nanos)),
                ],
            ));
        }
    }

    /// Flushes the sink, if one is attached.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.incr("a");
        obs.add("a", 5);
        obs.observe("h", 1.0);
        obs.set_gauge("g", 3);
        obs.emit("kind", &[]);
        obs.flush();
        let span = obs.span("phase");
        span.finish();
    }

    #[test]
    fn facade_routes_to_registry_and_sink() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
        assert!(obs.enabled());
        obs.incr("c");
        obs.add("c", 2);
        obs.set_gauge("g", -4);
        obs.observe("h", 123.0);
        obs.emit("evt", &[("x", Value::I64(-1))]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-4));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(sink.kinds(), vec!["evt".to_string()]);
    }

    #[test]
    fn span_records_histogram_and_event() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Some(registry.clone()), Some(sink.clone()));
        obs.span("work").finish();
        {
            let _implicit = obs.span("dropped");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("span.work.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("span.dropped.ns").unwrap().count, 1);
        assert_eq!(sink.kinds(), vec!["span".to_string(), "span".to_string()]);
    }
}
