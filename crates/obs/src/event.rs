//! Structured events and pluggable sinks.
//!
//! An [`Event`] is a kind plus ordered key/value fields; sinks decide where
//! it lands. [`JsonlSink`] appends one JSON object per line to a file (the
//! format every `results/` consumer in this workspace reads), while
//! [`MemorySink`] buffers events for test assertions.

use crate::json::{push_json_f64, push_json_string};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A single typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (JSON-escaped on serialization).
    Str(String),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_json_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => push_json_string(out, v),
        }
    }
}

/// A structured event: a kind, a sequence number and ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What happened, e.g. `"alert.accepted"` or `"phase"`.
    pub kind: String,
    /// Monotonic per-process sequence number, assigned at construction.
    pub seq: u64,
    /// Ordered field name/value pairs.
    pub fields: Vec<(String, Value)>,
}

static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl Event {
    /// A new event with the next process-wide sequence number.
    pub fn new(kind: &str, fields: &[(&str, Value)]) -> Self {
        Event {
            kind: kind.to_string(),
            seq: EVENT_SEQ.fetch_add(1, Ordering::Relaxed),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes the event as a single-line JSON object
    /// (`{"kind":...,"seq":...,<fields>}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push_str("{\"kind\":");
        push_json_string(&mut out, &self.kind);
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            value.push_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Where events go. Implementations must be cheap enough for hot paths or
/// buffer internally.
pub trait EventSink {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes buffered events to their destination. Default: no-op.
    fn flush(&self) {}
}

/// Appends one JSON object per line to a file (JSON Lines).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        // I/O errors on telemetry must not take down the instrumented run.
        let _ = writeln!(writer, "{}", event.to_json());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Buffers events in memory for test assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// All events seen so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// The kinds of all events seen so far, in emission order.
    pub fn kinds(&self) -> Vec<String> {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .map(|e| e.kind.clone())
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered events.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_all_value_types() {
        let e = Event::new(
            "verdict",
            &[
                ("node", Value::U64(7)),
                ("delta", Value::I64(-3)),
                ("score", Value::F64(0.5)),
                ("malicious", Value::Bool(true)),
                ("note", Value::Str("line\n\"two\"".to_string())),
            ],
        );
        let json = e.to_json();
        assert!(json.starts_with("{\"kind\":\"verdict\",\"seq\":"));
        assert!(json.contains("\"node\":7"));
        assert!(json.contains("\"delta\":-3"));
        assert!(json.contains("\"score\":0.5"));
        assert!(json.contains("\"malicious\":true"));
        assert!(json.contains("\"note\":\"line\\n\\\"two\\\"\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn sequence_numbers_increase() {
        let a = Event::new("a", &[]);
        let b = Event::new("b", &[]);
        assert!(b.seq > a.seq);
    }

    #[test]
    fn field_lookup() {
        let e = Event::new("k", &[("x", Value::U64(1))]);
        assert_eq!(e.field("x"), Some(&Value::U64(1)));
        assert_eq!(e.field("y"), None);
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("first", &[]));
        sink.emit(&Event::new("second", &[]));
        assert_eq!(sink.kinds(), vec!["first", "second"]);
        assert_eq!(sink.len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("secloc-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Event::new("one", &[("s", Value::Str("a\"b".into()))]));
            sink.emit(&Event::new("two", &[]));
        } // drop flushes
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"one\""));
        assert!(lines[0].contains("\\\"b"));
        assert!(lines[1].contains("\"kind\":\"two\""));
        std::fs::remove_file(&path).ok();
    }
}
