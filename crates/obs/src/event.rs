//! Structured events and pluggable sinks.
//!
//! An [`Event`] is a kind plus ordered key/value fields, optionally stamped
//! with a [`SpanContext`] so it can be attributed to one trace (in this
//! workspace: one sweep cell). Sinks decide where events land:
//! [`JsonlSink`] appends one JSON object per line to a file (the format
//! every `results/` consumer in this workspace reads), [`MemorySink`]
//! buffers events for test assertions, [`FlightRecorder`] keeps a bounded
//! ring of recent events for post-mortem dumps, and [`FanoutSink`]
//! broadcasts to several sinks at once.

use crate::json::{push_json_f64, push_json_string};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A single typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (JSON-escaped on serialization).
    Str(String),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_json_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => push_json_string(out, v),
        }
    }
}

/// The trace coordinates of an event: which trace it belongs to and which
/// span within that trace emitted it.
///
/// Identifiers are deterministic — the orchestrator derives `trace_id` from
/// the cell key and `span_id` from (trace, span name) via FNV — so replaying
/// a seeded sweep reproduces the same ids, and a flight-recorder dump can be
/// joined against a fresh run of the same cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this event belongs to (one sweep cell = one trace).
    pub trace_id: u64,
    /// The span within the trace (e.g. a pipeline phase).
    pub span_id: u64,
    /// The enclosing span, when there is one.
    pub parent_id: Option<u64>,
}

impl SpanContext {
    /// A root span context for `trace_id` (span = trace, no parent).
    pub fn root(trace_id: u64) -> Self {
        SpanContext {
            trace_id,
            span_id: trace_id,
            parent_id: None,
        }
    }

    /// A deterministic child context: the child's span id is derived from
    /// this context's span id and `name` by FNV-1a, and this context's span
    /// becomes the parent.
    pub fn child(&self, name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ self.span_id;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SpanContext {
            trace_id: self.trace_id,
            span_id: hash,
            parent_id: Some(self.span_id),
        }
    }
}

/// A structured event: a kind, a sequence number, an optional span context
/// and ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What happened, e.g. `"bs.alert"` or `"phase"`.
    pub kind: String,
    /// Monotonic per-process sequence number, assigned at construction.
    pub seq: u64,
    /// Trace coordinates, when the event was emitted inside a trace.
    pub ctx: Option<SpanContext>,
    /// Ordered field name/value pairs.
    pub fields: Vec<(String, Value)>,
}

static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl Event {
    /// A new event with the next process-wide sequence number and no span
    /// context.
    pub fn new(kind: &str, fields: &[(&str, Value)]) -> Self {
        Event {
            kind: kind.to_string(),
            seq: EVENT_SEQ.fetch_add(1, Ordering::Relaxed),
            ctx: None,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Stamps the event with a span context (builder style).
    pub fn with_ctx(mut self, ctx: SpanContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes the event as a single-line JSON object
    /// (`{"kind":...,"seq":...[,"trace":...,"span":...[,"parent":...]],<fields>}`).
    ///
    /// Trace/span/parent ids are 16-hex-digit strings (matching the cell-key
    /// format in checkpoint and cache files), not JSON numbers, so consumers
    /// that read numbers as `f64` cannot corrupt them.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push_str("{\"kind\":");
        push_json_string(&mut out, &self.kind);
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        if let Some(ctx) = &self.ctx {
            let _ = write!(out, ",\"trace\":\"{:016x}\"", ctx.trace_id);
            let _ = write!(out, ",\"span\":\"{:016x}\"", ctx.span_id);
            if let Some(parent) = ctx.parent_id {
                let _ = write!(out, ",\"parent\":\"{parent:016x}\"");
            }
        }
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            value.push_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Where events go. Implementations must be cheap enough for hot paths or
/// buffer internally.
pub trait EventSink {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes buffered events to their destination. Default: no-op.
    fn flush(&self) {}
}

/// Appends one JSON object per line to a file (JSON Lines).
///
/// I/O errors never panic or take down the instrumented run; the first
/// error is retained ("sticky") and surfaced through [`JsonlSink::try_flush`]
/// or [`JsonlSink::last_error`] so callers that care (the sweep CLI, tests)
/// can fail loudly at the end instead of silently losing telemetry.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    // io::Error is not Clone, so the sticky error is stored as kind+message.
    error: Mutex<Option<(std::io::ErrorKind, String)>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            error: Mutex::new(None),
        })
    }

    fn record_error(&self, err: &std::io::Error) {
        let mut slot = self.error.lock().expect("jsonl sink poisoned");
        if slot.is_none() {
            *slot = Some((err.kind(), err.to_string()));
        }
    }

    /// The first I/O error seen by this sink, if any.
    pub fn last_error(&self) -> Option<(std::io::ErrorKind, String)> {
        self.error.lock().expect("jsonl sink poisoned").clone()
    }

    /// Flushes buffered lines and reports the first error seen over the
    /// sink's lifetime (from any earlier `emit` as well as this flush).
    pub fn try_flush(&self) -> std::io::Result<()> {
        {
            let mut writer = self.writer.lock().expect("jsonl sink poisoned");
            if let Err(err) = writer.flush() {
                self.record_error(&err);
            }
        }
        match self.last_error() {
            None => Ok(()),
            Some((kind, message)) => Err(std::io::Error::new(kind, message)),
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        // I/O errors on telemetry must not take down the instrumented run;
        // they are retained for try_flush() instead.
        if let Err(err) = writeln!(writer, "{}", event.to_json()) {
            drop(writer);
            self.record_error(&err);
        }
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        if let Err(err) = writer.flush() {
            drop(writer);
            self.record_error(&err);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Buffers events in memory for test assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// All events seen so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// The kinds of all events seen so far, in emission order.
    pub fn kinds(&self) -> Vec<String> {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .map(|e| e.kind.clone())
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered events.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// A bounded ring of the most recent events, for post-mortem "flight
/// recorder" dumps.
///
/// The recorder is meant to ride alongside the primary sink (via
/// [`FanoutSink`]): it costs one clone + ring push per event and holds only
/// the last `capacity` events, so it can stay attached to long sweeps. When
/// something goes wrong — a worker panic, an outcome mismatch, a health
/// alert — the tail is dumped to `results/flightrec_<cell>.jsonl` with
/// [`FlightRecorder::dump`] or, filtered to one cell's trace,
/// [`FlightRecorder::dump_trace`].
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events belonging to `trace_id`, oldest first.
    pub fn snapshot_trace(&self, trace_id: u64) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .filter(|e| e.ctx.map(|c| c.trace_id) == Some(trace_id))
            .cloned()
            .collect()
    }

    /// Writes the retained events to `path` as JSONL, oldest first.
    pub fn dump(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        Self::write_jsonl(path, &self.snapshot())
    }

    /// Writes the retained events for `trace_id` to `path` as JSONL.
    pub fn dump_trace(&self, path: impl AsRef<Path>, trace_id: u64) -> std::io::Result<usize> {
        Self::write_jsonl(path, &self.snapshot_trace(trace_id))
    }

    fn write_jsonl(path: impl AsRef<Path>, events: &[Event]) -> std::io::Result<usize> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut writer = BufWriter::new(File::create(path)?);
        for event in events {
            writeln!(writer, "{}", event.to_json())?;
        }
        writer.flush()?;
        Ok(events.len())
    }
}

impl EventSink for FlightRecorder {
    fn emit(&self, event: &Event) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
}

/// Broadcasts every event to several sinks (primary JSONL file + flight
/// recorder + health monitor, for instance).
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn EventSink + Send + Sync>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// A fanout over `sinks`, which receive events in the given order.
    pub fn new(sinks: Vec<Arc<dyn EventSink + Send + Sync>>) -> Self {
        FanoutSink { sinks }
    }

    /// Appends another downstream sink (builder style).
    pub fn with(mut self, sink: Arc<dyn EventSink + Send + Sync>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl EventSink for FanoutSink {
    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_all_value_types() {
        let e = Event::new(
            "verdict",
            &[
                ("node", Value::U64(7)),
                ("delta", Value::I64(-3)),
                ("score", Value::F64(0.5)),
                ("malicious", Value::Bool(true)),
                ("note", Value::Str("line\n\"two\"".to_string())),
            ],
        );
        let json = e.to_json();
        assert!(json.starts_with("{\"kind\":\"verdict\",\"seq\":"));
        assert!(json.contains("\"node\":7"));
        assert!(json.contains("\"delta\":-3"));
        assert!(json.contains("\"score\":0.5"));
        assert!(json.contains("\"malicious\":true"));
        assert!(json.contains("\"note\":\"line\\n\\\"two\\\"\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn sequence_numbers_increase() {
        let a = Event::new("a", &[]);
        let b = Event::new("b", &[]);
        assert!(b.seq > a.seq);
    }

    #[test]
    fn field_lookup() {
        let e = Event::new("k", &[("x", Value::U64(1))]);
        assert_eq!(e.field("x"), Some(&Value::U64(1)));
        assert_eq!(e.field("y"), None);
    }

    #[test]
    fn span_context_serializes_as_hex() {
        let ctx = SpanContext::root(0xabcd).child("phase");
        let e = Event::new("k", &[]).with_ctx(ctx);
        let json = e.to_json();
        assert!(json.contains("\"trace\":\"000000000000abcd\""));
        assert!(json.contains(&format!("\"span\":\"{:016x}\"", ctx.span_id)));
        assert!(json.contains("\"parent\":\"000000000000abcd\""));
        // Context-free events keep the original shape.
        assert!(!Event::new("k", &[]).to_json().contains("trace"));
    }

    #[test]
    fn child_span_ids_are_deterministic_and_distinct() {
        let root = SpanContext::root(42);
        let a = root.child("detection");
        let b = root.child("location");
        assert_eq!(a, root.child("detection"));
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(a.trace_id, 42);
        assert_eq!(a.parent_id, Some(root.span_id));
        // Grandchildren chain off the child's span id.
        let aa = a.child("inner");
        assert_eq!(aa.parent_id, Some(a.span_id));
        assert_ne!(aa.span_id, root.child("inner").span_id);
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("first", &[]));
        sink.emit(&Event::new("second", &[]));
        assert_eq!(sink.kinds(), vec!["first", "second"]);
        assert_eq!(sink.len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("secloc-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Event::new("one", &[("s", Value::Str("a\"b".into()))]));
            sink.emit(&Event::new("two", &[]));
            assert!(sink.try_flush().is_ok());
            assert!(sink.last_error().is_none());
        } // drop flushes
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"one\""));
        assert!(lines[0].contains("\\\"b"));
        assert!(lines[1].contains("\"kind\":\"two\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.emit(&Event::new("e", &[("i", Value::U64(i))]));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        let indices: Vec<_> = snap.iter().map(|e| e.field("i").cloned()).collect();
        assert_eq!(
            indices,
            vec![
                Some(Value::U64(2)),
                Some(Value::U64(3)),
                Some(Value::U64(4))
            ]
        );
    }

    #[test]
    fn flight_recorder_filters_by_trace() {
        let rec = FlightRecorder::new(16);
        let t1 = SpanContext::root(1);
        let t2 = SpanContext::root(2);
        rec.emit(&Event::new("a", &[]).with_ctx(t1));
        rec.emit(&Event::new("b", &[]).with_ctx(t2));
        rec.emit(&Event::new("c", &[]).with_ctx(t1));
        rec.emit(&Event::new("d", &[])); // no context
        let only_t1 = rec.snapshot_trace(1);
        assert_eq!(only_t1.len(), 2);
        assert_eq!(only_t1[0].kind, "a");
        assert_eq!(only_t1[1].kind, "c");
    }

    #[test]
    fn flight_recorder_dump_writes_jsonl() {
        let dir = std::env::temp_dir().join("secloc-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flightrec-{}.jsonl", std::process::id()));
        let rec = FlightRecorder::new(8);
        rec.emit(&Event::new("x", &[]).with_ctx(SpanContext::root(9)));
        rec.emit(&Event::new("y", &[]));
        assert_eq!(rec.dump(&path).unwrap(), 2);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert_eq!(rec.dump_trace(&path, 9).unwrap(), 1);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"kind\":\"x\""));
        assert!(!contents.contains("\"kind\":\"y\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_broadcasts_to_all_sinks() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone()]).with(b.clone());
        fan.emit(&Event::new("e", &[]));
        fan.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
