//! Health watchdog: pluggable detectors over the event stream.
//!
//! A [`HealthMonitor`] sits in the sink chain (usually inside a
//! [`crate::FanoutSink`]) and feeds every event to a set of
//! [`HealthDetector`]s. When a detector finds something wrong it produces a
//! [`HealthAlert`]; the monitor retains the alert and re-emits it as a
//! `health.<detector>` event on its downstream sink so alerts land in the
//! same JSONL stream as everything else. `health.*` events are never fed
//! back into detectors, so a noisy detector cannot trigger itself.
//!
//! ## Detector contract
//!
//! Detectors are driven three ways:
//!
//! - [`HealthDetector::on_event`] for every non-`health.*` event, in
//!   emission order (the monitor serializes calls under a lock);
//! - [`HealthDetector::on_tick`] from a caller-driven clock (the sweep
//!   CLI's progress loop calls [`HealthMonitor::tick`]) with the wall-clock
//!   time since the last event — event streams have no heartbeat of their
//!   own, so stall detection must come from outside;
//! - [`HealthDetector::on_finish`] once, when the monitored workload says
//!   it is done, for end-of-stream invariants.
//!
//! Detectors must be cheap: they run inline on the emit path.
//!
//! The stock detectors cover the failure modes the sweep orchestrator and
//! ROADMAP item 2 (`secloc-alerter`) care about:
//!
//! - [`StalledStreamDetector`] — no events for longer than a timeout;
//! - [`CounterAnomalyDetector`] — a `revocation` event without τ′+1
//!   distinct accepted accusers, or an `alerts.summary` whose delivered
//!   total disagrees with the per-decision `bs.alert` events;
//! - [`MalformedInputDetector`] — more malformed input lines than an
//!   alerter stream's budget allows;
//! - [`CacheHitRateDetector`] — a warm sweep whose cache-hit rate
//!   collapsed;
//! - [`CheckpointGapDetector`] — completed cells running far ahead of the
//!   persisted checkpoint frontier.

use crate::event::{Event, EventSink, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One problem a detector found.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Which detector raised it (e.g. `"counter_anomaly"`).
    pub detector: String,
    /// Human-readable description.
    pub message: String,
    /// Structured context (copied onto the emitted `health.*` event).
    pub fields: Vec<(String, Value)>,
}

/// A pluggable health check over the event stream. See the module docs for
/// the driving contract.
pub trait HealthDetector: Send {
    /// A short identifier; the emitted event kind is `health.<name>`.
    fn name(&self) -> &'static str;

    /// Inspects one event (never a `health.*` event).
    fn on_event(&mut self, event: &Event, alerts: &mut Vec<HealthAlert>);

    /// Periodic wall-clock callback; `idle` is the time since the last
    /// event (or since monitor creation when none arrived yet).
    fn on_tick(&mut self, idle: Duration, alerts: &mut Vec<HealthAlert>) {
        let _ = (idle, alerts);
    }

    /// End-of-stream callback for final invariants.
    fn on_finish(&mut self, alerts: &mut Vec<HealthAlert>) {
        let _ = alerts;
    }
}

struct MonitorInner {
    detectors: Vec<Box<dyn HealthDetector>>,
    alerts: Vec<HealthAlert>,
    last_event: Instant,
}

/// An [`EventSink`] that feeds events through health detectors and forwards
/// them (plus any `health.*` alerts) to an optional downstream sink.
pub struct HealthMonitor {
    inner: Mutex<MonitorInner>,
    downstream: Option<Arc<dyn EventSink + Send + Sync>>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("health monitor poisoned");
        f.debug_struct("HealthMonitor")
            .field("detectors", &inner.detectors.len())
            .field("alerts", &inner.alerts.len())
            .field("downstream", &self.downstream.is_some())
            .finish()
    }
}

impl HealthMonitor {
    /// A monitor over `detectors`, forwarding events (and emitting
    /// `health.*` alert events) to `downstream` when given.
    pub fn new(
        detectors: Vec<Box<dyn HealthDetector>>,
        downstream: Option<Arc<dyn EventSink + Send + Sync>>,
    ) -> Self {
        HealthMonitor {
            inner: Mutex::new(MonitorInner {
                detectors,
                alerts: Vec::new(),
                last_event: Instant::now(),
            }),
            downstream,
        }
    }

    /// All alerts raised so far, in order.
    pub fn alerts(&self) -> Vec<HealthAlert> {
        self.inner
            .lock()
            .expect("health monitor poisoned")
            .alerts
            .clone()
    }

    /// Number of alerts raised so far.
    pub fn alert_count(&self) -> usize {
        self.inner
            .lock()
            .expect("health monitor poisoned")
            .alerts
            .len()
    }

    /// Whether no detector has raised an alert.
    pub fn is_healthy(&self) -> bool {
        self.alert_count() == 0
    }

    /// Drives the wall-clock detectors; call periodically (the sweep CLI's
    /// progress loop does) while the monitored workload runs.
    pub fn tick(&self) {
        let mut inner = self.inner.lock().expect("health monitor poisoned");
        let idle = inner.last_event.elapsed();
        let mut fresh = Vec::new();
        for detector in &mut inner.detectors {
            detector.on_tick(idle, &mut fresh);
        }
        self.publish(&mut inner, fresh);
    }

    /// Signals end-of-stream so detectors can check final invariants.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().expect("health monitor poisoned");
        let mut fresh = Vec::new();
        for detector in &mut inner.detectors {
            detector.on_finish(&mut fresh);
        }
        self.publish(&mut inner, fresh);
    }

    fn publish(&self, inner: &mut MonitorInner, fresh: Vec<HealthAlert>) {
        for alert in fresh {
            if let Some(down) = &self.downstream {
                let mut event = Event::new(
                    &format!("health.{}", alert.detector),
                    &[("message", Value::Str(alert.message.clone()))],
                );
                event.fields.extend(alert.fields.iter().cloned());
                down.emit(&event);
            }
            inner.alerts.push(alert);
        }
    }
}

impl EventSink for HealthMonitor {
    fn emit(&self, event: &Event) {
        if let Some(down) = &self.downstream {
            down.emit(event);
        }
        let mut inner = self.inner.lock().expect("health monitor poisoned");
        inner.last_event = Instant::now();
        // health.* events are downstream-only: feeding them back into
        // detectors could loop a noisy detector through itself.
        if event.kind.starts_with("health.") {
            return;
        }
        let mut fresh = Vec::new();
        for detector in &mut inner.detectors {
            detector.on_event(event, &mut fresh);
        }
        self.publish(&mut inner, fresh);
    }

    fn flush(&self) {
        if let Some(down) = &self.downstream {
            down.flush();
        }
    }
}

fn field_u64(event: &Event, name: &str) -> Option<u64> {
    match event.field(name) {
        Some(Value::U64(v)) => Some(*v),
        Some(Value::I64(v)) => u64::try_from(*v).ok(),
        _ => None,
    }
}

fn field_str<'e>(event: &'e Event, name: &str) -> Option<&'e str> {
    match event.field(name) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Alerts when no event has arrived for longer than `timeout` (driven by
/// [`HealthMonitor::tick`]). One alert per stall: the flag rearms when the
/// stream resumes.
#[derive(Debug)]
pub struct StalledStreamDetector {
    timeout: Duration,
    stalled: bool,
}

impl StalledStreamDetector {
    /// A detector alerting after `timeout` of silence.
    pub fn new(timeout: Duration) -> Self {
        StalledStreamDetector {
            timeout,
            stalled: false,
        }
    }
}

impl HealthDetector for StalledStreamDetector {
    fn name(&self) -> &'static str {
        "stalled_stream"
    }

    fn on_event(&mut self, _event: &Event, _alerts: &mut Vec<HealthAlert>) {
        self.stalled = false;
    }

    fn on_tick(&mut self, idle: Duration, alerts: &mut Vec<HealthAlert>) {
        if idle >= self.timeout && !self.stalled {
            self.stalled = true;
            alerts.push(HealthAlert {
                detector: self.name().to_string(),
                message: format!(
                    "no events for {:.1}s (timeout {:.1}s)",
                    idle.as_secs_f64(),
                    self.timeout.as_secs_f64()
                ),
                fields: vec![("idle_ms".to_string(), Value::U64(idle.as_millis() as u64))],
            });
        }
    }
}

#[derive(Debug, Default)]
struct TraceCounters {
    tau_prime: Option<u64>,
    /// Per target: distinct reporters whose accusations were accepted.
    accusers: HashMap<u64, Vec<u64>>,
    /// Total `bs.alert` decision events seen (one per delivered alert).
    decisions: u64,
}

/// Cross-checks the §3.1 revocation counters against the decision stream.
///
/// Two invariants, per trace (per sweep cell):
///
/// - a `revocation` event must be preceded by at least τ′+1 `bs.alert`
///   events with distinct reporters and an `accepted`/`accepted_and_revoked`
///   outcome for that target — a revocation below quorum means the base
///   station's counters are corrupt;
/// - an `alerts.summary` event's `delivered` total must equal the number of
///   `bs.alert` decision events seen — a mismatch means decisions went
///   uncounted (exactly the telemetry bug class satellite S3 fixes).
///
/// τ′ is learned from `run.start`/`cell.start`/`alerter.deploy` events
/// (field `tau_prime`) and falls back to the constructor value.
///
/// The streaming alerter's own decision vocabulary is checked under the
/// same invariants: `alerter.decision` counts like `bs.alert` and
/// `alerter.revocation` like `revocation`, so one detector audits both
/// the batch recording and the live re-decisions in a replayed stream.
#[derive(Debug)]
pub struct CounterAnomalyDetector {
    default_tau_prime: Option<u64>,
    traces: HashMap<Option<u64>, TraceCounters>,
}

impl CounterAnomalyDetector {
    /// A detector with `default_tau_prime` used when the stream itself
    /// never announces τ′.
    pub fn new(default_tau_prime: Option<u64>) -> Self {
        CounterAnomalyDetector {
            default_tau_prime,
            traces: HashMap::new(),
        }
    }
}

impl HealthDetector for CounterAnomalyDetector {
    fn name(&self) -> &'static str {
        "counter_anomaly"
    }

    fn on_event(&mut self, event: &Event, alerts: &mut Vec<HealthAlert>) {
        let detector = self.name().to_string();
        let trace = event.ctx.map(|c| c.trace_id);
        match event.kind.as_str() {
            "run.start" | "cell.start" | "alerter.deploy" => {
                if let Some(tp) = field_u64(event, "tau_prime") {
                    self.traces.entry(trace).or_default().tau_prime = Some(tp);
                }
            }
            "bs.alert" | "alerter.decision" => {
                let counters = self.traces.entry(trace).or_default();
                // `alerts.summary` reconciles `delivered` against the batch
                // path's `bs.alert` events only; the alerter's re-decisions
                // still feed the quorum tracking below.
                if event.kind == "bs.alert" {
                    counters.decisions += 1;
                }
                let accepted = matches!(
                    field_str(event, "outcome"),
                    Some("accepted" | "accepted_and_revoked")
                );
                if accepted {
                    if let (Some(reporter), Some(target)) =
                        (field_u64(event, "reporter"), field_u64(event, "target"))
                    {
                        let reporters = counters.accusers.entry(target).or_default();
                        if !reporters.contains(&reporter) {
                            reporters.push(reporter);
                        }
                    }
                }
            }
            "revocation" | "alerter.revocation" => {
                let counters = self.traces.entry(trace).or_default();
                let tau_prime = counters.tau_prime.or(self.default_tau_prime);
                let Some(tau_prime) = tau_prime else {
                    return; // quorum unknown: nothing to check
                };
                let Some(target) = field_u64(event, "target") else {
                    return;
                };
                let distinct = counters.accusers.get(&target).map_or(0, |r| r.len() as u64);
                let required = tau_prime + 1;
                if distinct < required {
                    alerts.push(HealthAlert {
                        detector: detector.clone(),
                        message: format!(
                            "target {target} revoked with {distinct} distinct accepted \
                             accusers, quorum is {required} (tau'={tau_prime})"
                        ),
                        fields: vec![
                            ("target".to_string(), Value::U64(target)),
                            ("distinct_accusers".to_string(), Value::U64(distinct)),
                            ("required".to_string(), Value::U64(required)),
                        ],
                    });
                }
            }
            "alerts.summary" => {
                let counters = self.traces.entry(trace).or_default();
                if let Some(delivered) = field_u64(event, "delivered") {
                    if delivered != counters.decisions {
                        alerts.push(HealthAlert {
                            detector: detector.clone(),
                            message: format!(
                                "alerts.summary reports {delivered} delivered but {} \
                                 bs.alert decisions were seen",
                                counters.decisions
                            ),
                            fields: vec![
                                ("delivered".to_string(), Value::U64(delivered)),
                                ("decisions".to_string(), Value::U64(counters.decisions)),
                            ],
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Alerts when a stream carried more malformed input lines than a budget.
///
/// The alerter survives malformed JSONL (counts it, emits
/// `alerter.malformed`, moves on); this detector turns those per-line
/// events into one actionable `health.malformed_input` alert when the
/// budget is exceeded — a producer that suddenly speaks a different
/// dialect should fail the smoke job, a single truncated line should not.
#[derive(Debug)]
pub struct MalformedInputDetector {
    max_malformed: u64,
    seen: u64,
    breached: bool,
}

impl MalformedInputDetector {
    /// Alerts once more than `max_malformed` malformed lines were seen
    /// (`0` = any malformed line alerts).
    pub fn new(max_malformed: u64) -> Self {
        MalformedInputDetector {
            max_malformed,
            seen: 0,
            breached: false,
        }
    }
}

impl HealthDetector for MalformedInputDetector {
    fn name(&self) -> &'static str {
        "malformed_input"
    }

    fn on_event(&mut self, event: &Event, alerts: &mut Vec<HealthAlert>) {
        if event.kind != "alerter.malformed" {
            return;
        }
        self.seen += 1;
        if self.seen > self.max_malformed && !self.breached {
            self.breached = true;
            alerts.push(HealthAlert {
                detector: self.name().to_string(),
                message: format!(
                    "{} malformed input line(s) exceed the budget of {}",
                    self.seen, self.max_malformed
                ),
                fields: vec![
                    ("seen".to_string(), Value::U64(self.seen)),
                    ("budget".to_string(), Value::U64(self.max_malformed)),
                ],
            });
        }
    }
}

/// Alerts when a finished sweep's cache-hit rate fell below a floor.
///
/// Reads the `sweep.end` event (`resumed` + `cached` over `cells`); sweeps
/// smaller than `min_cells` are exempt, as is any sweep that executed from
/// cold (hit rate 0 with zero resumed/cached cells is normal — collapse
/// means a *warm* sweep stopped hitting).
#[derive(Debug)]
pub struct CacheHitRateDetector {
    floor: f64,
    min_cells: u64,
}

impl CacheHitRateDetector {
    /// Alerts when `(resumed + cached) / cells < floor` for sweeps of at
    /// least `min_cells` cells that reused *some* prior work.
    pub fn new(floor: f64, min_cells: u64) -> Self {
        CacheHitRateDetector { floor, min_cells }
    }
}

impl HealthDetector for CacheHitRateDetector {
    fn name(&self) -> &'static str {
        "cache_hit_rate"
    }

    fn on_event(&mut self, event: &Event, alerts: &mut Vec<HealthAlert>) {
        if event.kind != "sweep.end" {
            return;
        }
        let (Some(cells), Some(resumed), Some(cached)) = (
            field_u64(event, "cells"),
            field_u64(event, "resumed"),
            field_u64(event, "cached"),
        ) else {
            return;
        };
        let hits = resumed + cached;
        if cells < self.min_cells || hits == 0 {
            return;
        }
        let rate = hits as f64 / cells as f64;
        if rate < self.floor {
            alerts.push(HealthAlert {
                detector: self.name().to_string(),
                message: format!(
                    "cache hit rate {rate:.3} below floor {:.3} ({hits}/{cells} cells)",
                    self.floor
                ),
                fields: vec![
                    ("hits".to_string(), Value::U64(hits)),
                    ("cells".to_string(), Value::U64(cells)),
                    ("rate".to_string(), Value::F64(rate)),
                ],
            });
        }
    }
}

/// Alerts when completed cells run too far ahead of the persisted
/// checkpoint frontier (`cell.complete` count vs the `frontier` field of
/// the latest `checkpoint.advance` event) — a growing gap means a crash
/// would redo that much work, or the checkpoint writer wedged.
#[derive(Debug)]
pub struct CheckpointGapDetector {
    max_gap: u64,
    completed: u64,
    frontier: u64,
    breached: bool,
}

impl CheckpointGapDetector {
    /// Alerts when more than `max_gap` completed cells are not yet covered
    /// by the checkpoint frontier.
    pub fn new(max_gap: u64) -> Self {
        CheckpointGapDetector {
            max_gap,
            completed: 0,
            frontier: 0,
            breached: false,
        }
    }
}

impl HealthDetector for CheckpointGapDetector {
    fn name(&self) -> &'static str {
        "checkpoint_gap"
    }

    fn on_event(&mut self, event: &Event, alerts: &mut Vec<HealthAlert>) {
        match event.kind.as_str() {
            "cell.complete" => self.completed += 1,
            "checkpoint.advance" => {
                if let Some(frontier) = field_u64(event, "frontier") {
                    self.frontier = self.frontier.max(frontier);
                }
            }
            _ => return,
        }
        let gap = self.completed.saturating_sub(self.frontier);
        if gap > self.max_gap {
            if !self.breached {
                self.breached = true;
                alerts.push(HealthAlert {
                    detector: self.name().to_string(),
                    message: format!(
                        "{} cells complete but checkpoint frontier is {} (gap {gap} > {})",
                        self.completed, self.frontier, self.max_gap
                    ),
                    fields: vec![
                        ("completed".to_string(), Value::U64(self.completed)),
                        ("frontier".to_string(), Value::U64(self.frontier)),
                        ("gap".to_string(), Value::U64(gap)),
                    ],
                });
            }
        } else {
            self.breached = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemorySink, SpanContext};

    fn ev(kind: &str, fields: &[(&str, Value)]) -> Event {
        Event::new(kind, fields)
    }

    #[test]
    fn monitor_forwards_and_collects_alerts() {
        struct AlwaysAlert;
        impl HealthDetector for AlwaysAlert {
            fn name(&self) -> &'static str {
                "always"
            }
            fn on_event(&mut self, _event: &Event, alerts: &mut Vec<HealthAlert>) {
                alerts.push(HealthAlert {
                    detector: "always".to_string(),
                    message: "boom".to_string(),
                    fields: vec![("n".to_string(), Value::U64(1))],
                });
            }
        }
        let down = Arc::new(MemorySink::new());
        let monitor = HealthMonitor::new(vec![Box::new(AlwaysAlert)], Some(down.clone()));
        assert!(monitor.is_healthy());
        monitor.emit(&ev("anything", &[]));
        assert_eq!(monitor.alert_count(), 1);
        assert!(!monitor.is_healthy());
        let kinds = down.kinds();
        assert_eq!(kinds, vec!["anything", "health.always"]);
        let health = &down.events()[1];
        assert_eq!(health.field("message"), Some(&Value::Str("boom".into())));
        assert_eq!(health.field("n"), Some(&Value::U64(1)));
        // health.* events do not re-enter detectors.
        monitor.emit(&ev("health.always", &[]));
        assert_eq!(monitor.alert_count(), 1);
    }

    #[test]
    fn stalled_stream_fires_once_per_stall() {
        let mut det = StalledStreamDetector::new(Duration::from_millis(100));
        let mut alerts = Vec::new();
        det.on_tick(Duration::from_millis(50), &mut alerts);
        assert!(alerts.is_empty());
        det.on_tick(Duration::from_millis(150), &mut alerts);
        assert_eq!(alerts.len(), 1);
        det.on_tick(Duration::from_millis(200), &mut alerts);
        assert_eq!(alerts.len(), 1, "no repeat while still stalled");
        det.on_event(&ev("any", &[]), &mut alerts);
        det.on_tick(Duration::from_millis(150), &mut alerts);
        assert_eq!(alerts.len(), 2, "rearmed after the stream resumed");
    }

    #[test]
    fn counter_anomaly_accepts_a_legitimate_quorum() {
        let mut det = CounterAnomalyDetector::new(None);
        let mut alerts = Vec::new();
        det.on_event(
            &ev("run.start", &[("tau_prime", Value::U64(1))]),
            &mut alerts,
        );
        for reporter in [1u64, 2] {
            det.on_event(
                &ev(
                    "bs.alert",
                    &[
                        ("reporter", Value::U64(reporter)),
                        ("target", Value::U64(9)),
                        ("outcome", Value::Str("accepted".into())),
                    ],
                ),
                &mut alerts,
            );
        }
        det.on_event(&ev("revocation", &[("target", Value::U64(9))]), &mut alerts);
        assert!(alerts.is_empty(), "tau'+1 = 2 distinct accusers suffice");
    }

    #[test]
    fn counter_anomaly_flags_revocation_below_quorum() {
        let mut det = CounterAnomalyDetector::new(Some(1));
        let mut alerts = Vec::new();
        // Duplicate reporter: only one distinct accuser.
        for _ in 0..3 {
            det.on_event(
                &ev(
                    "bs.alert",
                    &[
                        ("reporter", Value::U64(1)),
                        ("target", Value::U64(9)),
                        ("outcome", Value::Str("accepted".into())),
                    ],
                ),
                &mut alerts,
            );
        }
        det.on_event(&ev("revocation", &[("target", Value::U64(9))]), &mut alerts);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("quorum"));
    }

    #[test]
    fn counter_anomaly_ignores_rejected_accusations() {
        let mut det = CounterAnomalyDetector::new(Some(1));
        let mut alerts = Vec::new();
        for reporter in [1u64, 2] {
            det.on_event(
                &ev(
                    "bs.alert",
                    &[
                        ("reporter", Value::U64(reporter)),
                        ("target", Value::U64(9)),
                        ("outcome", Value::Str("ignored_reporter_budget".into())),
                    ],
                ),
                &mut alerts,
            );
        }
        det.on_event(&ev("revocation", &[("target", Value::U64(9))]), &mut alerts);
        assert_eq!(alerts.len(), 1, "rejected accusations do not count");
    }

    #[test]
    fn counter_anomaly_tracks_traces_independently() {
        let mut det = CounterAnomalyDetector::new(Some(0));
        let mut alerts = Vec::new();
        let t1 = SpanContext::root(1);
        let t2 = SpanContext::root(2);
        det.on_event(
            &ev(
                "bs.alert",
                &[
                    ("reporter", Value::U64(5)),
                    ("target", Value::U64(9)),
                    ("outcome", Value::Str("accepted_and_revoked".into())),
                ],
            )
            .with_ctx(t1),
            &mut alerts,
        );
        // Trace 1 has its quorum; trace 2 has nothing for target 9.
        det.on_event(
            &ev("revocation", &[("target", Value::U64(9))]).with_ctx(t1),
            &mut alerts,
        );
        assert!(alerts.is_empty());
        det.on_event(
            &ev("revocation", &[("target", Value::U64(9))]).with_ctx(t2),
            &mut alerts,
        );
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn counter_anomaly_checks_summary_totals() {
        let mut det = CounterAnomalyDetector::new(None);
        let mut alerts = Vec::new();
        det.on_event(
            &ev(
                "bs.alert",
                &[
                    ("reporter", Value::U64(1)),
                    ("target", Value::U64(2)),
                    ("outcome", Value::Str("accepted".into())),
                ],
            ),
            &mut alerts,
        );
        det.on_event(
            &ev("alerts.summary", &[("delivered", Value::U64(1))]),
            &mut alerts,
        );
        assert!(alerts.is_empty());
        det.on_event(
            &ev("alerts.summary", &[("delivered", Value::U64(5))]),
            &mut alerts,
        );
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("5 delivered"));
    }

    #[test]
    fn counter_anomaly_audits_alerter_decisions_too() {
        let mut det = CounterAnomalyDetector::new(None);
        let mut alerts = Vec::new();
        det.on_event(
            &ev("alerter.deploy", &[("tau_prime", Value::U64(2))]),
            &mut alerts,
        );
        det.on_event(
            &ev(
                "alerter.decision",
                &[
                    ("reporter", Value::U64(1)),
                    ("target", Value::U64(9)),
                    ("outcome", Value::Str("accepted".into())),
                ],
            ),
            &mut alerts,
        );
        det.on_event(
            &ev("alerter.revocation", &[("target", Value::U64(9))]),
            &mut alerts,
        );
        assert_eq!(alerts.len(), 1, "one accuser is below the tau'+1=3 quorum");
        // alerter.decision events do not disturb the bs.alert/delivered
        // reconciliation.
        det.on_event(
            &ev("alerts.summary", &[("delivered", Value::U64(0))]),
            &mut alerts,
        );
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn malformed_input_respects_budget_and_fires_once() {
        let mut det = MalformedInputDetector::new(2);
        let mut alerts = Vec::new();
        det.on_event(&ev("alerter.malformed", &[]), &mut alerts);
        det.on_event(&ev("alerter.malformed", &[]), &mut alerts);
        assert!(alerts.is_empty(), "within budget");
        det.on_event(&ev("alerter.malformed", &[]), &mut alerts);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("exceed the budget"));
        det.on_event(&ev("alerter.malformed", &[]), &mut alerts);
        assert_eq!(alerts.len(), 1, "fires once");
        det.on_event(&ev("other", &[]), &mut alerts);
        assert!(alerts.is_empty() || alerts.len() == 1);
    }

    #[test]
    fn cache_hit_rate_flags_warm_collapse_only() {
        let mut det = CacheHitRateDetector::new(0.5, 10);
        let mut alerts = Vec::new();
        let end = |cells, resumed, cached| {
            ev(
                "sweep.end",
                &[
                    ("cells", Value::U64(cells)),
                    ("resumed", Value::U64(resumed)),
                    ("cached", Value::U64(cached)),
                ],
            )
        };
        det.on_event(&end(100, 0, 0), &mut alerts);
        assert!(alerts.is_empty(), "cold sweep is fine");
        det.on_event(&end(5, 1, 0), &mut alerts);
        assert!(alerts.is_empty(), "below min_cells is exempt");
        det.on_event(&end(100, 10, 10), &mut alerts);
        assert_eq!(alerts.len(), 1, "warm sweep at 20% hit rate collapsed");
        det.on_event(&end(100, 50, 30), &mut alerts);
        assert_eq!(alerts.len(), 1, "healthy warm sweep stays quiet");
    }

    #[test]
    fn checkpoint_gap_fires_once_until_frontier_catches_up() {
        let mut det = CheckpointGapDetector::new(2);
        let mut alerts = Vec::new();
        for _ in 0..3 {
            det.on_event(&ev("cell.complete", &[]), &mut alerts);
        }
        assert_eq!(alerts.len(), 1, "gap 3 > 2");
        det.on_event(&ev("cell.complete", &[]), &mut alerts);
        assert_eq!(alerts.len(), 1, "still breached, no repeat");
        det.on_event(
            &ev("checkpoint.advance", &[("frontier", Value::U64(4))]),
            &mut alerts,
        );
        for _ in 0..3 {
            det.on_event(&ev("cell.complete", &[]), &mut alerts);
        }
        assert_eq!(alerts.len(), 2, "rearmed after the frontier advanced");
    }
}
