//! Named counters, gauges and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics: resolve them once by name, then update lock-free on hot
//! paths. The registry itself is only locked on resolution and snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing, saturating counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter (registry-less, for tests and ad-hoc use).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing; one extra
    /// overflow bucket follows implicitly.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in value units, accumulated as f64 bits.
    sum_bits: AtomicU64,
    /// Min/max as ordered f64 bit patterns (valid for non-negative values).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A fixed-bucket histogram for non-negative values (times, sizes, counts).
///
/// Values are assigned to the first bucket whose upper bound is `>=` the
/// value; values above every bound land in an overflow bucket. Quantiles
/// are estimated by linear interpolation inside the containing bucket,
/// which is exact at bucket boundaries and conservative in between.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Default bounds for nanosecond timings: 1 µs to ~17 s, ×2 per bucket.
    pub const DEFAULT_TIME_BOUNDS_NS: &'static [f64] = &[
        1.0e3, 2.0e3, 4.0e3, 8.0e3, 16.0e3, 32.0e3, 64.0e3, 128.0e3, 256.0e3, 512.0e3, 1.0e6,
        2.0e6, 4.0e6, 8.0e6, 16.0e6, 32.0e6, 64.0e6, 128.0e6, 256.0e6, 512.0e6, 1.0e9, 2.0e9,
        4.0e9, 8.0e9, 17.0e9,
    ];

    /// A histogram with the given strictly increasing bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// `count` exponential buckets starting at `first`, growing by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `first > 0`, `factor > 1` and `count > 0`.
    pub fn exponential_bounds(first: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(first > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut bound = first;
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        bounds
    }

    /// Records one observation (negative values clamp to zero).
    pub fn observe(&self, value: f64) {
        let value = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let inner = &self.0;
        let idx = inner
            .bounds
            .partition_point(|&b| b < value)
            .min(inner.counts.len() - 1);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // f64 sum via CAS on the bit pattern.
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        inner.min_bits.fetch_min(value.to_bits(), Ordering::Relaxed);
        inner.max_bits.fetch_max(value.to_bits(), Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable snapshot for rendering and quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let bucket_counts: Vec<u64> = inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = inner.count.load(Ordering::Relaxed);
        let min = f64::from_bits(inner.min_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            bucket_counts,
            count,
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 { 0.0 } else { min },
            max: f64::from_bits(inner.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bucket. Overflow-bucket quantiles report the
    /// observed maximum.
    ///
    /// # Panics
    ///
    /// Panics unless `q` lies in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.bucket_counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            let next = cumulative + bucket_count;
            if (next as f64) >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: the best point estimate is the max.
                    return self.max;
                }
                let lower = if i == 0 {
                    self.min.min(self.bounds[0])
                } else {
                    self.bounds[i - 1]
                };
                let upper = self.bounds[i];
                let into = (rank - cumulative as f64) / bucket_count as f64;
                return (lower + (upper - lower) * into.clamp(0.0, 1.0)).clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }

    /// p50, p90, p99 in one call.
    pub fn p50_p90_p99(&self) -> (f64, f64, f64) {
        (self.quantile(0.5), self.quantile(0.9), self.quantile(0.99))
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metric namespace: resolves names to handles and takes snapshots.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// A consistent snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Renders every metric as aligned human-readable text.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// Frozen registry state.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The value of a counter, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of a gauge, if it exists.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Aligned human-readable rendering of every metric.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let (p50, p90, p99) = h.p50_p90_p99();
                let _ = writeln!(
                    out,
                    "  {name:<44} n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
                    h.count,
                    h.mean(),
                    p50,
                    p90,
                    p99,
                    h.max,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics_and_saturation() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "counter must saturate, not wrap");
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 30.0]);
        // Exactly on a bound lands in that bucket (first bound >= value).
        h.observe(10.0);
        h.observe(10.1);
        h.observe(20.0);
        h.observe(30.0);
        h.observe(30.1); // overflow
        let s = h.snapshot();
        assert_eq!(s.bucket_counts, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.1);
        assert!((s.sum - 100.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_negative_and_nan_clamp_to_zero() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        h.observe(-5.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.bucket_counts, vec![2, 0, 0]);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::with_bounds(&[100.0, 200.0, 400.0]);
        for _ in 0..50 {
            h.observe(50.0); // first bucket
        }
        for _ in 0..50 {
            h.observe(150.0); // second bucket
        }
        let s = h.snapshot();
        let (p50, p90, _) = s.p50_p90_p99();
        // The 50th of 100 observations sits at the first/second boundary.
        assert!(p50 <= 100.0 + 1e-9, "p50 {p50}");
        assert!(p50 >= 50.0, "p50 {p50}");
        // p90 is 80% into the second bucket (100..200).
        assert!((100.0..=200.0).contains(&p90), "p90 {p90}");
        // Quantiles never leave the observed range.
        assert!(s.quantile(0.0) >= s.min);
        assert!(s.quantile(1.0) <= s.max);
    }

    #[test]
    fn quantiles_in_overflow_report_max() {
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(10.0);
        h.observe(90.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 90.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::with_bounds(&[2.0, 1.0]);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), Some(5));

        let h1 = r.histogram("h", &[1.0, 2.0]);
        // Second resolution with different bounds keeps the original.
        let h2 = r.histogram("h", &[9.0]);
        h1.observe(1.5);
        h2.observe(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("h").unwrap().count, 2);
        assert_eq!(snap.histogram("h").unwrap().bounds, vec![1.0, 2.0]);
    }

    #[test]
    fn exponential_bounds_grow() {
        let b = Histogram::exponential_bounds(1.0, 2.0, 5);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let r = MetricsRegistry::new();
        r.counter("alerts.accepted").add(7);
        r.gauge("revoked").set(3);
        r.histogram("lat", &[1.0, 10.0]).observe(5.0);
        let text = r.render_text();
        assert!(text.contains("alerts.accepted"));
        assert!(text.contains("revoked"));
        assert!(text.contains("lat"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn empty_histogram_edges_are_all_zero() {
        let s = Histogram::with_bounds(&[1.0, 2.0]).snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.0, "q={q}");
        }
        assert_eq!((s.min, s.max, s.sum), (0.0, 0.0, 0.0));
        assert_eq!(s.p50_p90_p99(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        h.observe(15.0);
        let s = h.snapshot();
        // One observation: every quantile must report that observation —
        // interpolation cannot leave the [min, max] = [15, 15] range.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 15.0, "q={q}");
        }
        assert_eq!(s.mean(), 15.0);
    }

    #[test]
    fn all_equal_samples_have_degenerate_quantiles() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        for _ in 0..1000 {
            h.observe(15.0);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 15.0, "q={q}");
        }
        // Same when every sample sits exactly on a bucket bound.
        let h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        for _ in 0..1000 {
            h.observe(20.0);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q), 20.0, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::with_bounds(&[1.0]).snapshot().quantile(1.5);
    }

    #[test]
    fn snapshot_is_coherent_under_concurrent_writers() {
        let r = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let c = r.counter("w.ops");
                    let h = r.histogram("w.lat", &[10.0, 100.0, 1_000.0]);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.incr();
                        h.observe((t * 100) as f64);
                        r.gauge(&format!("w.g{t}")).set(n as i64);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        // Snapshots taken mid-write must be internally consistent: the
        // histogram's bucket total never exceeds its recorded count at a
        // later instant, and counters never move backwards across snaps.
        let mut last_ops = 0u64;
        for _ in 0..50 {
            let snap = r.snapshot();
            if let Some(h) = snap.histogram("w.lat") {
                let bucket_total: u64 = h.bucket_counts.iter().sum();
                // `count` is bumped after the bucket, so the bucket total
                // may run ahead by in-flight observers but never lag by
                // more than the writer count.
                assert!(
                    bucket_total + 4 >= h.count && bucket_total <= h.count + 4,
                    "bucket total {bucket_total} vs count {}",
                    h.count
                );
            }
            let ops = snap.counter("w.ops").unwrap_or(0);
            assert!(ops >= last_ops, "counter went backwards");
            last_ops = ops;
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let snap = r.snapshot();
        assert_eq!(snap.counter("w.ops"), Some(total), "no update lost");
        assert_eq!(snap.histogram("w.lat").unwrap().count, total);
        let bucket_total: u64 = snap.histogram("w.lat").unwrap().bucket_counts.iter().sum();
        assert_eq!(bucket_total, total);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let c = Counter::new();
        let h = Histogram::with_bounds(&[1_000.0]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
