//! Property-based tests for the radio substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secloc_crypto::{Key, NodeId};
use secloc_geometry::Point2;
use secloc_radio::ranging::{BoundedRanging, Ranging, RssiRanging};
use secloc_radio::timing::{DelayComponent, RttModel};
use secloc_radio::{BeaconPayload, Cycles, EventQueue, Frame, FrameBody, RequestPayload};

proptest! {
    #[test]
    fn rtt_samples_bounded_by_model(
        seed in any::<u64>(),
        bases in proptest::array::uniform4(100u64..5000),
        jitters in proptest::array::uniform4(0u64..1000),
        dist in 0.0..1000.0f64,
    ) {
        let model = RttModel::new([
            DelayComponent { base: bases[0], jitter_max: jitters[0] },
            DelayComponent { base: bases[1], jitter_max: jitters[1] },
            DelayComponent { base: bases[2], jitter_max: jitters[2] },
            DelayComponent { base: bases[3], jitter_max: jitters[3] },
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let rtt = model.sample(dist, Cycles::ZERO, &mut rng);
            prop_assert!(rtt >= model.min_rtt());
            prop_assert!(rtt <= model.max_rtt_with_range(dist));
        }
    }

    #[test]
    fn replay_strictly_increases_rtt(seed in any::<u64>(), extra in 1u64..100_000) {
        let model = RttModel::paper_default();
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let honest = model.sample(50.0, Cycles::ZERO, &mut a);
        let replayed = model.sample(50.0, Cycles::new(extra), &mut b);
        prop_assert_eq!(replayed, honest + Cycles::new(extra));
    }

    #[test]
    fn bounded_ranging_honours_epsilon(
        seed in any::<u64>(),
        eps in 0.0..50.0f64,
        d in 0.0..500.0f64,
    ) {
        let r = BoundedRanging::new(eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = r.measure(d, &mut rng);
        prop_assert!((m - d).abs() <= eps + 1e-9);
        prop_assert!(m >= 0.0);
    }

    #[test]
    fn rssi_ranging_honours_epsilon(seed in any::<u64>(), d in 0.0..300.0f64) {
        let r = RssiRanging::mica2_outdoor();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = r.measure(d, &mut rng);
        prop_assert!((m - d).abs() <= r.max_error() + 1e-9);
    }

    #[test]
    fn frame_roundtrip_and_forgery(
        key in any::<u128>(),
        other_key in any::<u128>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        x in -1e4..1e4f64,
        y in -1e4..1e4f64,
    ) {
        prop_assume!(key != other_key);
        let k = Key::from_u128(key);
        let body = FrameBody::Beacon(BeaconPayload {
            beacon: NodeId(src),
            declared: Point2::new(x, y),
        });
        let f = Frame::seal(NodeId(src), NodeId(dst), body, &k);
        prop_assert_eq!(f.open(NodeId(dst), &k).unwrap(), body);
        prop_assert!(f.open(NodeId(dst), &Key::from_u128(other_key)).is_err());
    }

    #[test]
    fn request_frames_roundtrip(key in any::<u128>(), req in any::<u32>()) {
        let k = Key::from_u128(key);
        let body = FrameBody::Request(RequestPayload { requester: NodeId(req) });
        let f = Frame::seal(NodeId(req), NodeId(req.wrapping_add(1)), body, &k);
        prop_assert_eq!(f.open(NodeId(req.wrapping_add(1)), &k).unwrap(), body);
    }

    #[test]
    fn wire_roundtrip_any_beacon(
        key in any::<u128>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        x in -1e6..1e6f64,
        y in -1e6..1e6f64,
    ) {
        use secloc_radio::wire;
        let k = Key::from_u128(key);
        let frame = Frame::seal(
            NodeId(src),
            NodeId(dst),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(src),
                declared: Point2::new(x, y),
            }),
            &k,
        );
        let parsed = wire::decode(&wire::encode(&frame)).unwrap();
        prop_assert_eq!(parsed, frame);
        prop_assert!(parsed.open(NodeId(dst), &k).is_ok());
    }

    #[test]
    fn wire_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // The strict parser must reject or parse — never panic — on
        // arbitrary input.
        let _ = secloc_radio::wire::decode(&bytes);
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles::new(t), i);
        }
        let mut last = Cycles::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
