//! Radio substrate: cycle-accurate timing, ranging and framing.
//!
//! The reproduced paper measures round-trip times in **CPU clock cycles** on
//! MICA motes (ATmega128L at 7.3728 MHz driving a CC1000 radio): "the
//! transmission time of one bit is about 384 clock cycles". This crate
//! models that hardware at the fidelity the paper's detectors need:
//!
//! - [`Cycles`] — a cycle-count timestamp with bit/byte/packet arithmetic;
//! - [`timing`] — the hardware shift-register delays `d1..d4` whose sum is
//!   the residual RTT after the paper's `(t4−t1)−(t3−t2)` cancellation, and
//!   the [`timing::RttModel`] producing RTT samples (Fig. 3 / Fig. 4);
//! - [`ranging`] — RSSI log-distance ranging with a bounded maximum error
//!   `ε_max`, the paper's distance-measurement assumption;
//! - [`Frame`] / [`BeaconPayload`] — authenticated packets, with sizes that
//!   drive transmission-time computations;
//! - [`EventQueue`] — a deterministic discrete-event scheduler used by the
//!   network simulation.
//!
//! # Examples
//!
//! ```
//! use secloc_radio::{timing::RttModel, Cycles};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let model = RttModel::paper_default();
//! let mut rng = StdRng::seed_from_u64(1);
//! let rtt = model.sample(10.0, Cycles::ZERO, &mut rng);
//! assert!(rtt >= model.min_rtt() && rtt <= model.max_rtt());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
mod event;
mod frame;
pub mod loss;
pub mod mac;
pub mod medium;
pub mod ranging;
pub mod telemetry;
mod time;
pub mod timing;
pub mod wire;

pub use event::EventQueue;
pub use frame::{BeaconPayload, Frame, FrameBody, FrameError, RequestPayload};
pub use telemetry::RadioMetrics;
pub use time::{Cycles, CPU_HZ, CYCLES_PER_BIT, SPEED_OF_LIGHT_FT_S};
