//! Link loss models and reliable delivery.
//!
//! §3 of the reproduced paper assumes "every alert from beacon nodes can be
//! successfully delivered to the base station using some standard fault
//! tolerant techniques (e.g., retransmission) when there are message
//! losses", and §3.2 makes the same assumption for revocation messages.
//! This module supplies the lossy links and the retransmission wrapper
//! that discharges those assumptions.

use rand::Rng;

/// A packet-loss process on one link.
pub trait LossModel {
    /// Draws whether the next packet is lost.
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;

    /// The long-run loss rate of the process.
    fn long_run_loss_rate(&self) -> f64;
}

/// Independent (Bernoulli) packet loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    rate: f64,
}

impl BernoulliLoss {
    /// Creates a model losing each packet independently with `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` lies in `[0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate must be in [0,1], got {rate}"
        );
        BernoulliLoss { rate }
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.rate > 0.0 && rng.gen_bool(self.rate)
    }

    fn long_run_loss_rate(&self) -> f64 {
        self.rate
    }
}

/// Bursty loss: the two-state Gilbert–Elliott channel.
///
/// In the *good* state packets are lost with `good_loss`; in the *bad*
/// state with `bad_loss`. Transitions happen per packet with rates
/// `p_good_to_bad` and `p_bad_to_good`. Radio links in the field lose
/// packets in bursts (fading, interference), which stresses retransmission
/// schemes much harder than independent loss at the same average rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottLoss {
    /// Loss probability in the good state.
    pub good_loss: f64,
    /// Loss probability in the bad state.
    pub bad_loss: f64,
    /// Per-packet transition probability good → bad.
    pub p_good_to_bad: f64,
    /// Per-packet transition probability bad → good.
    pub p_bad_to_good: f64,
    in_bad_state: bool,
}

impl GilbertElliottLoss {
    /// Creates a bursty channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics unless all four probabilities lie in `[0, 1]` and at least
    /// one transition probability is positive.
    pub fn new(good_loss: f64, bad_loss: f64, p_good_to_bad: f64, p_bad_to_good: f64) -> Self {
        for (name, v) in [
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        assert!(
            p_good_to_bad + p_bad_to_good > 0.0,
            "transition probabilities cannot both be zero"
        );
        GilbertElliottLoss {
            good_loss,
            bad_loss,
            p_good_to_bad,
            p_bad_to_good,
            in_bad_state: false,
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }
}

impl LossModel for GilbertElliottLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        // Transition first, then draw loss in the new state. A
        // zero-probability transition consumes no randomness (mirroring
        // the `rate > 0.0` gate below), so a channel pinned to the good
        // state (`p_good_to_bad = 0`) degenerates **draw for draw** to
        // `BernoulliLoss::new(good_loss)` — the property fault-injection
        // equivalence tests rely on.
        let p_flip = if self.in_bad_state {
            self.p_bad_to_good
        } else {
            self.p_good_to_bad
        };
        if p_flip > 0.0 && rng.gen_bool(p_flip) {
            self.in_bad_state = !self.in_bad_state;
        }
        let p = if self.in_bad_state {
            self.bad_loss
        } else {
            self.good_loss
        };
        p > 0.0 && rng.gen_bool(p)
    }

    fn long_run_loss_rate(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.bad_loss + (1.0 - pb) * self.good_loss
    }
}

/// Result of a reliable (retransmitting) send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableSend {
    /// Whether any copy got through within the budget.
    pub delivered: bool,
    /// Transmissions used (1 = no retransmission needed).
    pub transmissions: u32,
}

/// Sends through `loss` with up to `max_transmissions` tries — the
/// "standard fault tolerant technique" the paper assumes for alert and
/// revocation delivery.
///
/// # Panics
///
/// Panics if `max_transmissions == 0`.
pub fn send_reliable<L: LossModel, R: Rng + ?Sized>(
    loss: &mut L,
    max_transmissions: u32,
    rng: &mut R,
) -> ReliableSend {
    assert!(max_transmissions > 0, "need at least one transmission");
    for attempt in 1..=max_transmissions {
        if !loss.is_lost(rng) {
            return ReliableSend {
                delivered: true,
                transmissions: attempt,
            };
        }
    }
    ReliableSend {
        delivered: false,
        transmissions: max_transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_rate_is_respected() {
        let mut loss = BernoulliLoss::new(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let lost = (0..10_000).filter(|_| loss.is_lost(&mut rng)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "got {rate}");
        assert_eq!(loss.long_run_loss_rate(), 0.3);
    }

    #[test]
    fn lossless_and_total_loss() {
        let mut none = BernoulliLoss::new(0.0);
        let mut all = BernoulliLoss::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| none.is_lost(&mut rng)));
        assert!((0..100).all(|_| all.is_lost(&mut rng)));
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut ge = GilbertElliottLoss::new(0.01, 0.6, 0.05, 0.20);
        let mut rng = StdRng::seed_from_u64(3);
        let lost = (0..200_000).filter(|_| ge.is_lost(&mut rng)).count();
        let measured = lost as f64 / 200_000.0;
        let expected = ge.long_run_loss_rate(); // 0.2*0.6 + 0.8*0.01 = 0.128
        assert!((expected - 0.128).abs() < 1e-9);
        assert!((measured - expected).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Loss events cluster: the conditional loss rate right after a loss
        // is much higher than the unconditional one.
        let mut ge = GilbertElliottLoss::new(0.01, 0.8, 0.02, 0.10);
        let mut rng = StdRng::seed_from_u64(4);
        let seq: Vec<bool> = (0..200_000).map(|_| ge.is_lost(&mut rng)).collect();
        let uncond = seq.iter().filter(|&&l| l).count() as f64 / seq.len() as f64;
        let after_loss: Vec<bool> = seq.windows(2).filter(|w| w[0]).map(|w| w[1]).collect();
        let cond = after_loss.iter().filter(|&&l| l).count() as f64 / after_loss.len() as f64;
        assert!(
            cond > uncond * 2.0,
            "not bursty: P(loss|loss)={cond:.3} vs P(loss)={uncond:.3}"
        );
    }

    #[test]
    fn retransmission_discharges_the_paper_assumption() {
        // 20% loss, 8 tries: delivery probability 1 - 0.2^8 > 0.9999997.
        let mut rng = StdRng::seed_from_u64(5);
        let mut failures = 0;
        for _ in 0..20_000 {
            let mut loss = BernoulliLoss::new(0.2);
            if !send_reliable(&mut loss, 8, &mut rng).delivered {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "retransmission failed {failures} times");
    }

    #[test]
    fn retransmission_counts_attempts() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut loss = BernoulliLoss::new(0.5);
        let sends: Vec<ReliableSend> = (0..2000)
            .map(|_| send_reliable(&mut loss, 10, &mut rng))
            .collect();
        let mean_tx: f64 =
            sends.iter().map(|s| s.transmissions as f64).sum::<f64>() / sends.len() as f64;
        // Geometric mean ~ 1/(1-0.5) = 2.
        assert!((mean_tx - 2.0).abs() < 0.2, "mean transmissions {mean_tx}");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut loss = BernoulliLoss::new(1.0);
        let s = send_reliable(&mut loss, 3, &mut rng);
        assert!(!s.delivered);
        assert_eq!(s.transmissions, 3);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_rate_rejected() {
        BernoulliLoss::new(1.2);
    }
}
