//! Radio energy accounting.
//!
//! Sensor-network papers live and die by energy budgets; the reproduced
//! paper's overhead argument ("a sensor node usually only needs to
//! communicate with a few other nodes") is ultimately an energy claim.
//! This model prices the protocols in millijoules using MICA2-class
//! constants so the overhead analysis can speak the native currency of
//! the field.

use crate::{Cycles, Frame};

/// Radio power draw profile, in milliamps at a given supply voltage.
///
/// Defaults are MICA2-class (CC1000 at 3 V): transmit ≈ 27 mA at full
/// power, receive/listen ≈ 10 mA, sleep ≈ 1 µA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Supply voltage in volts.
    pub supply_v: f64,
    /// Transmit current in milliamps.
    pub tx_ma: f64,
    /// Receive current in milliamps.
    pub rx_ma: f64,
    /// Idle-listen current in milliamps.
    pub idle_ma: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            supply_v: 3.0,
            tx_ma: 27.0,
            rx_ma: 10.0,
            idle_ma: 10.0,
        }
    }
}

impl EnergyModel {
    /// Energy to keep a state drawing `current_ma` for `duration`, in
    /// millijoules: `mJ = mA × V × s`.
    fn energy_mj(&self, current_ma: f64, duration: Cycles) -> f64 {
        current_ma * self.supply_v * duration.as_secs()
    }

    /// Energy to transmit one frame, in millijoules.
    pub fn transmit_mj(&self, frame: &Frame) -> f64 {
        self.energy_mj(self.tx_ma, frame.transmission_time())
    }

    /// Energy to receive one frame, in millijoules.
    pub fn receive_mj(&self, frame: &Frame) -> f64 {
        self.energy_mj(self.rx_ma, frame.transmission_time())
    }

    /// Energy to idle-listen for `duration`, in millijoules.
    pub fn idle_mj(&self, duration: Cycles) -> f64 {
        self.energy_mj(self.idle_ma, duration)
    }

    /// Energy for one request/beacon/report exchange as seen by the
    /// requester: transmit the request, receive the beacon signal and the
    /// timestamp report, idle-listen in between (approximated by one
    /// round-trip of turnaround).
    pub fn probe_mj(&self, request: &Frame, beacon: &Frame, report: &Frame) -> f64 {
        self.transmit_mj(request)
            + self.receive_mj(beacon)
            + self.receive_mj(report)
            + self.idle_mj(Cycles::from_bytes(8)) // turnaround listen
    }

    /// Total energy across the network for `messages` transmissions of
    /// `bytes`-byte frames with `avg_listeners` receivers each, in
    /// millijoules.
    pub fn broadcast_round_mj(&self, messages: f64, bytes: u64, avg_listeners: f64) -> f64 {
        let t = Cycles::from_bytes(bytes);
        messages * (self.energy_mj(self.tx_ma, t) + avg_listeners * self.energy_mj(self.rx_ma, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BeaconPayload, FrameBody, RequestPayload};
    use secloc_crypto::{Key, NodeId};
    use secloc_geometry::Point2;

    fn frames() -> (Frame, Frame, Frame) {
        let k = Key::from_u128(1);
        let req = Frame::seal(
            NodeId(0),
            NodeId(1),
            FrameBody::Request(RequestPayload {
                requester: NodeId(0),
            }),
            &k,
        );
        let bcn = Frame::seal(
            NodeId(1),
            NodeId(0),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(1.0, 2.0),
            }),
            &k,
        );
        let rpt = Frame::seal(
            NodeId(1),
            NodeId(0),
            FrameBody::TimestampReport {
                turnaround: Cycles::new(100),
            },
            &k,
        );
        (req, bcn, rpt)
    }

    #[test]
    fn transmit_costs_more_than_receive() {
        let e = EnergyModel::default();
        let (req, ..) = frames();
        assert!(e.transmit_mj(&req) > e.receive_mj(&req));
        assert!(e.transmit_mj(&req) > 0.0);
    }

    #[test]
    fn energy_scales_with_frame_size() {
        let e = EnergyModel::default();
        let (req, bcn, _) = frames();
        // The beacon frame (45 B) is larger than the request (29 B).
        assert!(bcn.wire_bytes() > req.wire_bytes());
        assert!(e.transmit_mj(&bcn) > e.transmit_mj(&req));
        let ratio = e.transmit_mj(&bcn) / e.transmit_mj(&req);
        let size_ratio = bcn.wire_bytes() as f64 / req.wire_bytes() as f64;
        assert!((ratio - size_ratio).abs() < 1e-9);
    }

    #[test]
    fn mica2_magnitudes_are_sane() {
        // A 45-byte frame at 19.2 kbit/s takes ~18.75 ms; at 27 mA, 3 V
        // that is ~1.5 mJ.
        let e = EnergyModel::default();
        let (_, bcn, _) = frames();
        let mj = e.transmit_mj(&bcn);
        assert!((1.0..2.5).contains(&mj), "got {mj} mJ");
    }

    #[test]
    fn probe_cost_dominated_by_radio_activity() {
        let e = EnergyModel::default();
        let (req, bcn, rpt) = frames();
        let probe = e.probe_mj(&req, &bcn, &rpt);
        let floor = e.transmit_mj(&req) + e.receive_mj(&bcn) + e.receive_mj(&rpt);
        assert!(probe > floor);
        assert!(
            probe < floor * 1.2,
            "idle share too big: {probe} vs {floor}"
        );
    }

    #[test]
    fn broadcast_round_accounts_listeners() {
        let e = EnergyModel::default();
        let lonely = e.broadcast_round_mj(100.0, 45, 0.0);
        let crowded = e.broadcast_round_mj(100.0, 45, 10.0);
        assert!(
            crowded > lonely * 3.0,
            "listening must dominate dense networks"
        );
    }

    #[test]
    fn zero_duration_zero_energy() {
        let e = EnergyModel::default();
        assert_eq!(e.idle_mj(Cycles::ZERO), 0.0);
    }
}
