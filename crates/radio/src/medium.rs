//! The shared radio medium.
//!
//! Ties the substrate together: node positions (for range checks and
//! propagation), frame transmission times, per-link loss, and attacker
//! *taps* that re-inject captured frames elsewhere (the physical mechanism
//! behind wormholes and local replayers). Deliveries come back as timed
//! events suitable for an [`crate::EventQueue`].

use crate::loss::{BernoulliLoss, LossModel};
use crate::telemetry::RadioMetrics;
use crate::{Cycles, Frame, FrameBody};
use rand::rngs::StdRng;
use rand::SeedableRng;
use secloc_geometry::{Field, GridIndex, Point2};
use std::sync::Arc;

/// One frame arriving at one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Receiver node index (into the medium's position table).
    pub receiver: usize,
    /// The frame as received (bit-identical to what was sent; integrity is
    /// the MAC layer's job).
    pub frame: Frame,
    /// Absolute arrival time of the last bit.
    pub at: Cycles,
    /// Whether this copy travelled through an attacker tap.
    pub via_tap: bool,
}

/// A passive attacker tap: captures frames airing within `capture_range`
/// of `capture_at` and re-injects them from `replay_from` after
/// `extra_delay` (plus a full store-and-forward frame time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Where the tap listens.
    pub capture_at: Point2,
    /// Capture radius in feet.
    pub capture_range: f64,
    /// Where the captured frame is re-transmitted.
    pub replay_from: Point2,
    /// Tunnel latency added on top of store-and-forward.
    pub extra_delay: Cycles,
}

/// The broadcast medium.
///
/// # Examples
///
/// ```
/// use secloc_crypto::{Key, NodeId};
/// use secloc_geometry::Point2;
/// use secloc_radio::medium::Medium;
/// use secloc_radio::{Cycles, Frame, FrameBody, RequestPayload};
///
/// let mut medium = Medium::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0), Point2::new(500.0, 0.0)],
///     150.0,
///     0.0, // lossless
///     7,
/// );
/// let frame = Frame::seal(
///     NodeId(0),
///     NodeId(1),
///     FrameBody::Request(RequestPayload { requester: NodeId(0) }),
///     &Key::from_u128(1),
/// );
/// let deliveries = medium.transmit(0, &frame, Cycles::ZERO);
/// // Node 1 hears it; node 2 is out of range; the sender never hears itself.
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].receiver, 1);
/// ```
#[derive(Debug)]
pub struct Medium {
    positions: Arc<[Point2]>,
    range_ft: f64,
    loss: BernoulliLoss,
    taps: Vec<Tap>,
    rng: StdRng,
    metrics: Option<RadioMetrics>,
    // Positions and taps are static between `add_tap` calls, so everything
    // geometric about a transmission is an invariant worth caching: who
    // hears a given sender (with the propagation delay already computed),
    // which taps capture it, and who hears each tap's replay point. Only
    // the per-receiver loss draws remain per transmit. The caches fill
    // lazily (first transmit from a sender) so construction stays cheap.
    // Everything cached is immutable once built and lives behind `Arc`, so
    // [`Medium::fork`] can hand policy variants of one topology the primed
    // geometry without copying it.
    grid: Option<Arc<GridIndex>>,
    grid_built: bool,
    direct: Vec<Option<InRangeList>>,
    tap_capture: Vec<Option<Arc<[u32]>>>,
    tap_replay: Vec<InRangeList>,
    taps_primed: bool,
}

/// Receivers in range of some point, ascending, with the propagation delay
/// to each one precomputed. Shared, not copied, when a medium is forked.
type InRangeList = Arc<[(u32, Cycles)]>;

/// Why a [`Medium`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MediumError {
    /// The radio range must be positive and finite.
    NonPositiveRange(f64),
    /// The per-packet loss rate must lie in `[0, 1]`.
    LossRateOutOfRange(f64),
}

impl std::fmt::Display for MediumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediumError::NonPositiveRange(r) => {
                write!(f, "range must be positive, got {r}")
            }
            MediumError::LossRateOutOfRange(r) => {
                write!(f, "loss rate must be in [0,1], got {r}")
            }
        }
    }
}

impl std::error::Error for MediumError {}

impl Medium {
    /// Creates a medium over static node positions.
    ///
    /// # Panics
    ///
    /// Panics unless the range is positive and the loss rate is in
    /// `[0, 1]`. Fallible callers (config builders, sweep drivers) should
    /// prefer [`Medium::try_new`].
    pub fn new(positions: Vec<Point2>, range_ft: f64, loss_rate: f64, seed: u64) -> Self {
        match Self::try_new(positions, range_ft, loss_rate, seed) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Medium::new`], but reports invalid parameters as a typed
    /// [`MediumError`] instead of panicking.
    pub fn try_new(
        positions: Vec<Point2>,
        range_ft: f64,
        loss_rate: f64,
        seed: u64,
    ) -> Result<Self, MediumError> {
        if !(range_ft.is_finite() && range_ft > 0.0) {
            return Err(MediumError::NonPositiveRange(range_ft));
        }
        if !(0.0..=1.0).contains(&loss_rate) {
            return Err(MediumError::LossRateOutOfRange(loss_rate));
        }
        let n = positions.len();
        Ok(Medium {
            positions: positions.into(),
            range_ft,
            loss: BernoulliLoss::new(loss_rate),
            taps: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: None,
            grid: None,
            grid_built: false,
            direct: vec![None; n],
            tap_capture: vec![None; n],
            tap_replay: Vec::new(),
            taps_primed: true, // no taps yet, nothing to prime
        })
    }

    /// Attaches traffic counters; every subsequent [`Medium::transmit`]
    /// records frames sent, delivered, dropped and tap-replayed.
    pub fn attach_metrics(&mut self, metrics: RadioMetrics) {
        self.metrics = Some(metrics);
    }

    /// Installs an attacker tap (wormhole end or local replayer).
    pub fn add_tap(&mut self, tap: Tap) {
        self.taps.push(tap);
        // Tap geometry changed: drop every tap-derived cache. Direct
        // delivery lists only depend on positions and stay valid.
        self.taps_primed = false;
        self.tap_replay.clear();
        for c in &mut self.tap_capture {
            *c = None;
        }
    }

    /// An independent medium over the same geometry: shares every built
    /// immutable cache (positions, spatial index, delivery and tap lists)
    /// by reference, starts a fresh loss-RNG stream from `seed`, and
    /// carries no metrics handle. Sweep engines sharing one topology
    /// across policy variants fork the primed medium instead of
    /// re-deriving its geometry; a fork seeded like a fresh
    /// [`Medium::new`] over the same inputs is bit-identical to it.
    pub fn fork(&self, seed: u64) -> Medium {
        Medium {
            positions: Arc::clone(&self.positions),
            range_ft: self.range_ft,
            loss: self.loss,
            taps: self.taps.clone(),
            rng: StdRng::seed_from_u64(seed),
            metrics: None,
            grid: self.grid.clone(),
            grid_built: self.grid_built,
            direct: self.direct.clone(),
            tap_capture: self.tap_capture.clone(),
            tap_replay: self.tap_replay.clone(),
            taps_primed: self.taps_primed,
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn position(&self, i: usize) -> Point2 {
        self.positions[i]
    }

    /// Transmits `frame` from node `sender` starting at `at`. Returns all
    /// deliveries — direct listeners in range plus copies re-injected by
    /// taps — sorted by arrival time.
    ///
    /// Allocates the returned `Vec` per call. Hot paths issuing many
    /// transmits should reuse a scratch buffer via
    /// [`Medium::transmit_into`]; this variant is kept for one-off sends
    /// and API compatibility.
    ///
    /// # Panics
    ///
    /// Panics when `sender` is out of bounds.
    pub fn transmit(&mut self, sender: usize, frame: &Frame, at: Cycles) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.transmit_into(sender, frame, at, &mut out);
        out
    }

    /// Allocation-free variant of [`Medium::transmit`]: clears `out` and
    /// fills it with the deliveries, sorted by arrival time.
    ///
    /// Consumes the RNG stream exactly like [`Medium::transmit`] and
    /// [`Medium::transmit_reference`] — one loss draw per in-range
    /// candidate, in ascending receiver order, direct listeners first and
    /// then each capturing tap in installation order — so the three entry
    /// points are interchangeable mid-stream without perturbing seeded
    /// simulations.
    ///
    /// # Panics
    ///
    /// Panics when `sender` is out of bounds.
    pub fn transmit_into(
        &mut self,
        sender: usize,
        frame: &Frame,
        at: Cycles,
        out: &mut Vec<Delivery>,
    ) {
        out.clear();
        self.prime_taps();
        self.prime_sender(sender);
        let airtime = frame.transmission_time();
        let n = self.positions.len();
        if let Some(m) = &self.metrics {
            m.frames_sent.incr();
            if matches!(frame.peek_body(), FrameBody::Request(_)) {
                m.ranging_requests.incr();
            }
        }

        // Direct deliveries: one pass over the precomputed in-range list,
        // touching only the loss draw per candidate. The cached list plays
        // the role of the range check, which therefore still stays ahead of
        // the loss draw — attaching metrics never changes the RNG stream.
        let direct = self.direct[sender].as_deref().expect("primed above");
        for &(receiver, prop) in direct {
            if self.loss.is_lost(&mut self.rng) {
                if let Some(m) = &self.metrics {
                    m.frames_dropped_loss.incr();
                }
                continue;
            }
            out.push(Delivery {
                receiver: receiver as usize,
                frame: *frame,
                at: at + airtime + prop,
                via_tap: false,
            });
        }
        if let Some(m) = &self.metrics {
            m.frames_dropped_range.add((n - 1 - direct.len()) as u64);
        }

        // Tap re-injections: a tap that hears the frame re-transmits it
        // after fully receiving it (store-and-forward) plus its tunnel
        // latency. Which taps hear this sender and who hears each tap are
        // both cached; only the sender exclusion is per-call.
        let capturing = self.tap_capture[sender].as_deref().expect("primed above");
        for &t in capturing {
            let tap = self.taps[t as usize];
            let replay_start = at + airtime + tap.extra_delay;
            let mut candidates = 0usize;
            for &(receiver, prop) in self.tap_replay[t as usize].iter() {
                if receiver as usize == sender {
                    continue;
                }
                candidates += 1;
                if self.loss.is_lost(&mut self.rng) {
                    if let Some(m) = &self.metrics {
                        m.frames_dropped_loss.incr();
                    }
                    continue;
                }
                out.push(Delivery {
                    receiver: receiver as usize,
                    frame: *frame,
                    at: replay_start + airtime + prop,
                    via_tap: true,
                });
            }
            if let Some(m) = &self.metrics {
                m.frames_dropped_range.add((n - 1 - candidates) as u64);
            }
        }

        if let Some(m) = &self.metrics {
            m.frames_delivered.add(out.len() as u64);
            m.frames_tap_replayed
                .add(out.iter().filter(|d| d.via_tap).count() as u64);
        }
        out.sort_by_key(|d| (d.at, d.receiver));
    }

    /// The pre-optimization transmit path: full linear scans over every
    /// node per call, no caching. Kept verbatim so the perf regression
    /// harness (`benches/hot_paths.rs`) can measure an honest before/after
    /// ratio on the same binary, and so tests can prove the cached path is
    /// bit-identical (same deliveries, same RNG stream, same metrics).
    ///
    /// Not for production use — call [`Medium::transmit_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `sender` is out of bounds.
    pub fn transmit_reference(
        &mut self,
        sender: usize,
        frame: &Frame,
        at: Cycles,
    ) -> Vec<Delivery> {
        let src = self.positions[sender];
        let airtime = frame.transmission_time();
        let mut out = Vec::new();
        if let Some(m) = &self.metrics {
            m.frames_sent.incr();
            if matches!(frame.peek_body(), FrameBody::Request(_)) {
                m.ranging_requests.incr();
            }
        }

        // Direct deliveries.
        for (i, &pos) in self.positions.iter().enumerate() {
            if i == sender {
                continue;
            }
            let d = src.distance(pos);
            // The range check must stay ahead of the loss draw so that
            // attaching metrics never changes the RNG stream.
            if d > self.range_ft {
                if let Some(m) = &self.metrics {
                    m.frames_dropped_range.incr();
                }
                continue;
            }
            if self.loss.is_lost(&mut self.rng) {
                if let Some(m) = &self.metrics {
                    m.frames_dropped_loss.incr();
                }
                continue;
            }
            let prop = Cycles::new(Cycles::propagation_fractional(d).round() as u64);
            out.push(Delivery {
                receiver: i,
                frame: *frame,
                at: at + airtime + prop,
                via_tap: false,
            });
        }

        // Tap re-injections: a tap that hears the frame re-transmits it
        // after fully receiving it (store-and-forward) plus its tunnel
        // latency.
        let taps: Vec<Tap> = self
            .taps
            .iter()
            .copied()
            .filter(|t| src.distance(t.capture_at) <= t.capture_range)
            .collect();
        for tap in taps {
            let replay_start = at + airtime + tap.extra_delay;
            for (i, &pos) in self.positions.iter().enumerate() {
                if i == sender {
                    continue;
                }
                let d = tap.replay_from.distance(pos);
                if d > self.range_ft {
                    if let Some(m) = &self.metrics {
                        m.frames_dropped_range.incr();
                    }
                    continue;
                }
                if self.loss.is_lost(&mut self.rng) {
                    if let Some(m) = &self.metrics {
                        m.frames_dropped_loss.incr();
                    }
                    continue;
                }
                let prop = Cycles::new(Cycles::propagation_fractional(d).round() as u64);
                out.push(Delivery {
                    receiver: i,
                    frame: *frame,
                    at: replay_start + airtime + prop,
                    via_tap: true,
                });
            }
        }

        if let Some(m) = &self.metrics {
            m.frames_delivered.add(out.len() as u64);
            m.frames_tap_replayed
                .add(out.iter().filter(|d| d.via_tap).count() as u64);
        }
        out.sort_by_key(|d| (d.at, d.receiver));
        out
    }

    /// Builds the per-tap replay lists (and the spatial index underneath)
    /// the first time they are needed after construction or `add_tap`.
    fn prime_taps(&mut self) {
        if self.taps_primed {
            return;
        }
        self.taps_primed = true;
        self.build_grid();
        let mut lists = Vec::with_capacity(self.taps.len());
        for t in 0..self.taps.len() {
            lists.push(self.in_range_list(self.taps[t].replay_from, None));
        }
        self.tap_replay = lists;
    }

    /// Builds the direct-delivery and tap-capture lists for `sender` on its
    /// first transmission.
    fn prime_sender(&mut self, sender: usize) {
        if self.direct[sender].is_none() {
            self.build_grid();
            let src = self.positions[sender];
            self.direct[sender] = Some(self.in_range_list(src, Some(sender)));
        }
        if self.tap_capture[sender].is_none() {
            let src = self.positions[sender];
            let caps: Arc<[u32]> = self
                .taps
                .iter()
                .enumerate()
                .filter(|(_, t)| src.distance(t.capture_at) <= t.capture_range)
                .map(|(i, _)| i as u32)
                .collect();
            self.tap_capture[sender] = Some(caps);
        }
    }

    /// Builds the bucket-grid index over node positions once. Positions
    /// with negative or non-finite coordinates cannot live in a [`Field`],
    /// so such media fall back to linear scans during cache builds (the
    /// caches themselves still apply).
    fn build_grid(&mut self) {
        if self.grid_built {
            return;
        }
        self.grid_built = true;
        let fits = !self.positions.is_empty()
            && self
                .positions
                .iter()
                .all(|p| p.x.is_finite() && p.y.is_finite() && p.x >= 0.0 && p.y >= 0.0);
        if !fits {
            return;
        }
        let mut w = 1.0f64;
        let mut h = 1.0f64;
        for p in self.positions.iter() {
            w = w.max(p.x);
            h = h.max(p.y);
        }
        let field = Field::new(w, h);
        self.grid = Some(Arc::new(GridIndex::build(
            &field,
            self.range_ft,
            self.positions.iter().copied(),
        )));
    }

    /// All receivers within radio range of `from` (excluding `exclude`),
    /// ascending, with their propagation delays precomputed. Allocates —
    /// called once per cache entry, never per transmit.
    fn in_range_list(&self, from: Point2, exclude: Option<usize>) -> InRangeList {
        let entry = |i: usize| {
            let d = from.distance(self.positions[i]);
            (
                i as u32,
                Cycles::new(Cycles::propagation_fractional(d).round() as u64),
            )
        };
        match &self.grid {
            Some(grid) => {
                let mut hits = Vec::new();
                grid.within_into(from, self.range_ft, &mut hits);
                hits.into_iter()
                    .filter(|&i| Some(i) != exclude)
                    .map(entry)
                    .collect()
            }
            None => (0..self.positions.len())
                .filter(|&i| Some(i) != exclude)
                .filter(|&i| from.distance(self.positions[i]) <= self.range_ft)
                .map(entry)
                .collect(),
        }
    }

    /// Per-packet delivery probability on an in-range link (loss model
    /// only; out-of-range links deliver nothing).
    pub fn link_delivery_probability(&self) -> f64 {
        1.0 - self.loss.long_run_loss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_crypto::{Key, NodeId};
    use secloc_radio_test_helpers::request_frame;

    /// Local helper namespace so tests read cleanly.
    mod secloc_radio_test_helpers {
        use super::*;
        use crate::{FrameBody, RequestPayload};

        pub fn request_frame(src: u32, dst: u32) -> Frame {
            Frame::seal(
                NodeId(src),
                NodeId(dst),
                FrameBody::Request(RequestPayload {
                    requester: NodeId(src),
                }),
                &Key::from_u128(9),
            )
        }
    }

    fn line_medium(loss: f64) -> Medium {
        Medium::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(100.0, 0.0),
                Point2::new(200.0, 0.0),
                Point2::new(900.0, 0.0),
            ],
            150.0,
            loss,
            3,
        )
    }

    #[test]
    fn range_limits_direct_delivery() {
        let mut m = line_medium(0.0);
        let f = request_frame(0, 1);
        let deliveries = m.transmit(0, &f, Cycles::ZERO);
        // Node 1 at 100 ft hears; node 2 at 200 ft and node 3 at 900 ft do not.
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, 1);
        assert!(!deliveries[0].via_tap);
        // Arrival after one full frame time plus ~1 propagation cycle.
        assert!(deliveries[0].at >= f.transmission_time());
        assert!(deliveries[0].at <= f.transmission_time() + Cycles::new(2));
    }

    #[test]
    fn sender_does_not_hear_itself() {
        let mut m = line_medium(0.0);
        let f = request_frame(1, 0);
        let receivers: Vec<usize> = m
            .transmit(1, &f, Cycles::ZERO)
            .iter()
            .map(|d| d.receiver)
            .collect();
        assert!(!receivers.contains(&1));
        assert_eq!(receivers, vec![0, 2]);
    }

    #[test]
    fn loss_thins_deliveries() {
        let mut lossy = line_medium(0.5);
        let f = request_frame(1, 0);
        let mut delivered = 0usize;
        for _ in 0..2000 {
            delivered += lossy.transmit(1, &f, Cycles::ZERO).len();
        }
        // Two in-range receivers, 50% each: expect ~2000.
        assert!((1800..2200).contains(&delivered), "got {delivered}");
        assert_eq!(lossy.link_delivery_probability(), 0.5);
    }

    #[test]
    fn wormhole_tap_reinjects_far_away() {
        let mut m = line_medium(0.0);
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 50.0,
            replay_from: Point2::new(900.0, 0.0),
            extra_delay: Cycles::ZERO,
        });
        let f = request_frame(0, 3);
        let deliveries = m.transmit(0, &f, Cycles::ZERO);
        // Direct: node 1. Tapped: node 3 (and node 2? 900->200 = 700 no).
        let tapped: Vec<&Delivery> = deliveries.iter().filter(|d| d.via_tap).collect();
        assert_eq!(tapped.len(), 1);
        assert_eq!(tapped[0].receiver, 3);
        // Store-and-forward: at least two full frame times.
        assert!(tapped[0].at >= f.transmission_time() + f.transmission_time());
    }

    #[test]
    fn tap_out_of_capture_range_is_inert() {
        let mut m = line_medium(0.0);
        m.add_tap(Tap {
            capture_at: Point2::new(500.0, 500.0),
            capture_range: 50.0,
            replay_from: Point2::new(900.0, 0.0),
            extra_delay: Cycles::ZERO,
        });
        let f = request_frame(0, 1);
        assert!(m.transmit(0, &f, Cycles::ZERO).iter().all(|d| !d.via_tap));
    }

    #[test]
    fn tap_delay_visible_in_arrival_times() {
        let mut m = line_medium(0.0);
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 50.0,
            replay_from: Point2::new(0.0, 0.0), // local replayer
            extra_delay: Cycles::new(5_000),
        });
        let f = request_frame(0, 1);
        let deliveries = m.transmit(0, &f, Cycles::ZERO);
        let direct = deliveries.iter().find(|d| !d.via_tap).unwrap();
        let replayed = deliveries.iter().find(|d| d.via_tap).unwrap();
        assert_eq!(replayed.receiver, direct.receiver);
        // Replay is one frame time + 5000 cycles behind the original —
        // exactly the delay the RTT filter keys on.
        let gap = replayed.at - direct.at;
        assert_eq!(gap, f.transmission_time() + Cycles::new(5_000));
    }

    #[test]
    fn deliveries_sorted_by_time() {
        let mut m = Medium::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(10.0, 0.0),
                Point2::new(140.0, 0.0),
            ],
            150.0,
            0.0,
            1,
        );
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 20.0,
            replay_from: Point2::new(5.0, 0.0),
            extra_delay: Cycles::new(100),
        });
        let f = request_frame(0, 1);
        let deliveries = m.transmit(0, &f, Cycles::ZERO);
        assert!(deliveries.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(deliveries.len() >= 4); // 2 direct + 2 replayed
    }

    #[test]
    fn empty_and_len() {
        let m = Medium::new(vec![], 10.0, 0.0, 0);
        assert!(m.is_empty());
        assert_eq!(line_medium(0.0).len(), 4);
    }

    #[test]
    fn metrics_count_traffic() {
        use secloc_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let mut m = line_medium(0.0);
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 50.0,
            replay_from: Point2::new(900.0, 0.0),
            extra_delay: Cycles::ZERO,
        });
        m.attach_metrics(RadioMetrics::new(&registry));
        let f = request_frame(0, 3);
        let deliveries = m.transmit(0, &f, Cycles::ZERO);
        let s = registry.snapshot();
        assert_eq!(s.counter("radio.frames.sent"), Some(1));
        assert_eq!(s.counter("radio.ranging.requests"), Some(1));
        assert_eq!(
            s.counter("radio.frames.delivered"),
            Some(deliveries.len() as u64)
        );
        let tapped = deliveries.iter().filter(|d| d.via_tap).count() as u64;
        assert_eq!(s.counter("radio.frames.tap_replayed"), Some(tapped));
        // Lossless medium: every non-delivery was a range drop.
        assert!(s.counter("radio.frames.dropped_range").unwrap() > 0);
        assert_eq!(s.counter("radio.frames.dropped_loss"), Some(0));
    }

    /// A bigger medium with taps, for cached-vs-reference equivalence.
    fn tapped_grid_medium(loss: f64, seed: u64) -> Medium {
        let mut positions = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                positions.push(Point2::new(i as f64 * 60.0, j as f64 * 60.0));
            }
        }
        let mut m = Medium::new(positions, 150.0, loss, seed);
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 120.0,
            replay_from: Point2::new(600.0, 600.0),
            extra_delay: Cycles::new(2_000),
        });
        m.add_tap(Tap {
            capture_at: Point2::new(600.0, 600.0),
            capture_range: 120.0,
            replay_from: Point2::new(0.0, 0.0),
            extra_delay: Cycles::new(2_000),
        });
        m
    }

    #[test]
    fn transmit_into_matches_reference_bit_for_bit() {
        // Two same-seeded media, one driven through the cached path and one
        // through the preserved reference path. Every delivery list and the
        // RNG stream position must agree transmit after transmit — with
        // loss enabled so a single extra/missing/misordered draw anywhere
        // desynchronizes everything after it.
        for loss in [0.0, 0.3] {
            let mut cached = tapped_grid_medium(loss, 42);
            let mut reference = tapped_grid_medium(loss, 42);
            let mut out = Vec::new();
            for round in 0..3u32 {
                for sender in 0..cached.len() {
                    let f = request_frame(sender as u32, 0);
                    let at = Cycles::new(u64::from(round) * 1_000_000);
                    cached.transmit_into(sender, &f, at, &mut out);
                    let expected = reference.transmit_reference(sender, &f, at);
                    assert_eq!(out, expected, "loss={loss} round={round} sender={sender}");
                }
            }
        }
    }

    #[test]
    fn transmit_metrics_match_reference_totals() {
        use secloc_obs::MetricsRegistry;
        let drive = |reference: bool| {
            let registry = MetricsRegistry::new();
            let mut m = tapped_grid_medium(0.25, 7);
            m.attach_metrics(RadioMetrics::new(&registry));
            for sender in 0..m.len() {
                let f = request_frame(sender as u32, 0);
                if reference {
                    m.transmit_reference(sender, &f, Cycles::ZERO);
                } else {
                    m.transmit(sender, &f, Cycles::ZERO);
                }
            }
            registry.snapshot()
        };
        let cached = drive(false);
        let reference = drive(true);
        for counter in [
            "radio.frames.sent",
            "radio.frames.delivered",
            "radio.frames.dropped_range",
            "radio.frames.dropped_loss",
            "radio.frames.tap_replayed",
            "radio.ranging.requests",
        ] {
            assert_eq!(
                cached.counter(counter),
                reference.counter(counter),
                "{counter}"
            );
        }
    }

    #[test]
    fn fork_shares_primed_caches_and_matches_a_fresh_medium() {
        // Prime every cache on the parent…
        let mut parent = tapped_grid_medium(0.3, 42);
        for sender in 0..parent.len() {
            parent.transmit(sender, &request_frame(sender as u32, 0), Cycles::ZERO);
        }
        // …fork it, and drive the fork in lockstep with a fresh medium
        // built from the same inputs and the fork's seed. Loss enabled so
        // any RNG-stream divergence desynchronizes the comparison.
        let mut fork = parent.fork(77);
        let mut fresh = tapped_grid_medium(0.3, 77);
        assert!(Arc::ptr_eq(&parent.positions, &fork.positions));
        assert!(parent
            .direct
            .iter()
            .zip(&fork.direct)
            .all(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }));
        for round in 0..2u32 {
            for sender in 0..fork.len() {
                let f = request_frame(sender as u32, 0);
                let at = Cycles::new(u64::from(round) * 1_000_000);
                assert_eq!(
                    fork.transmit(sender, &f, at),
                    fresh.transmit(sender, &f, at),
                    "round={round} sender={sender}"
                );
            }
        }
        // The fork is independent: a tap added to it never reaches the
        // parent, whose caches stay primed.
        fork.add_tap(Tap {
            capture_at: Point2::new(60.0, 60.0),
            capture_range: 10.0,
            replay_from: Point2::new(660.0, 660.0),
            extra_delay: Cycles::ZERO,
        });
        assert_eq!(parent.taps.len(), 2);
        assert!(parent.taps_primed);
    }

    #[test]
    fn add_tap_invalidates_caches() {
        let mut m = line_medium(0.0);
        let f = request_frame(0, 3);
        // Prime the caches with a tapless transmit…
        assert!(m.transmit(0, &f, Cycles::ZERO).iter().all(|d| !d.via_tap));
        // …then install a tap; the next transmit must see it.
        m.add_tap(Tap {
            capture_at: Point2::new(0.0, 0.0),
            capture_range: 50.0,
            replay_from: Point2::new(900.0, 0.0),
            extra_delay: Cycles::ZERO,
        });
        let tapped: Vec<usize> = m
            .transmit(0, &f, Cycles::ZERO)
            .iter()
            .filter(|d| d.via_tap)
            .map(|d| d.receiver)
            .collect();
        assert_eq!(tapped, vec![3]);
    }

    #[test]
    fn transmit_into_clears_stale_scratch() {
        let mut m = line_medium(0.0);
        let f = request_frame(0, 1);
        let mut out = m.transmit(3, &f, Cycles::ZERO); // node 3 is isolated…
        assert!(out.is_empty());
        m.transmit_into(0, &f, Cycles::ZERO, &mut out);
        assert_eq!(out.len(), 1); // …and a reused buffer holds only fresh results
        m.transmit_into(3, &f, Cycles::ZERO, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_coordinates_fall_back_to_linear_scan() {
        // Positions a Field can't host: the grid is skipped but the caches
        // still work and agree with the reference scan.
        let positions = vec![
            Point2::new(-100.0, -50.0),
            Point2::new(-20.0, -50.0),
            Point2::new(300.0, 40.0),
        ];
        let mut cached = Medium::new(positions.clone(), 150.0, 0.2, 5);
        let mut reference = Medium::new(positions, 150.0, 0.2, 5);
        let f = request_frame(0, 1);
        for sender in 0..3 {
            for _ in 0..10 {
                assert_eq!(
                    cached.transmit(sender, &f, Cycles::ZERO),
                    reference.transmit_reference(sender, &f, Cycles::ZERO),
                );
            }
        }
    }

    #[test]
    fn metrics_do_not_perturb_rng_stream() {
        // Attaching metrics must not change what gets delivered: the loss
        // draws have to happen in exactly the same order.
        let f = request_frame(1, 0);
        let run = |instrument: bool| -> Vec<Vec<usize>> {
            let mut m = line_medium(0.4);
            if instrument {
                let registry = secloc_obs::MetricsRegistry::new();
                m.attach_metrics(RadioMetrics::new(&registry));
            }
            (0..50)
                .map(|_| {
                    m.transmit(1, &f, Cycles::ZERO)
                        .iter()
                        .map(|d| d.receiver)
                        .collect()
                })
                .collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let positions = vec![Point2::new(0.0, 0.0)];
        assert_eq!(
            Medium::try_new(positions.clone(), 0.0, 0.1, 1).err(),
            Some(MediumError::NonPositiveRange(0.0))
        );
        assert!(matches!(
            Medium::try_new(positions.clone(), f64::NAN, 0.1, 1),
            Err(MediumError::NonPositiveRange(r)) if r.is_nan()
        ));
        assert_eq!(
            Medium::try_new(positions.clone(), 100.0, 1.5, 1).err(),
            Some(MediumError::LossRateOutOfRange(1.5))
        );
        assert!(Medium::try_new(positions, 100.0, 0.5, 1).is_ok());
        assert!(MediumError::LossRateOutOfRange(1.5)
            .to_string()
            .contains("[0,1]"));
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn new_panics_via_typed_error() {
        Medium::new(vec![Point2::new(0.0, 0.0)], -5.0, 0.1, 1);
    }
}
