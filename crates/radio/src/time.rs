//! Cycle-count time base.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// CPU clock frequency of the modelled mote (ATmega128L on a MICA2),
/// in hertz.
pub const CPU_HZ: f64 = 7_372_800.0;

/// Radio transmission time of one bit, in CPU cycles.
///
/// Stated verbatim in the paper: "the transmission time of one bit is about
/// 384 clock cycles" (19.2 kbit/s on a 7.3728 MHz CPU).
pub const CYCLES_PER_BIT: u64 = 384;

/// Speed of light in feet per second (RF propagation).
pub const SPEED_OF_LIGHT_FT_S: f64 = 983_571_056.43;

/// A point in (or duration of) simulated time, counted in CPU clock cycles.
///
/// The paper's RTT measurements, replay-detection thresholds and packet
/// timings are all expressed in cycles, so the whole simulation shares this
/// time base.
///
/// # Examples
///
/// ```
/// use secloc_radio::{Cycles, CYCLES_PER_BIT};
///
/// let t = Cycles::from_bits(4.5);
/// assert_eq!(t.as_u64(), (4.5 * CYCLES_PER_BIT as f64) as u64);
/// assert!(Cycles::new(100) + Cycles::new(20) > Cycles::new(110));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles — the simulation epoch.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// The duration of `bits` bit-times (rounded down to whole cycles).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is negative or not finite.
    pub fn from_bits(bits: f64) -> Self {
        assert!(
            bits.is_finite() && bits >= 0.0,
            "bit count must be >= 0, got {bits}"
        );
        Cycles((bits * CYCLES_PER_BIT as f64) as u64)
    }

    /// The transmission duration of `bytes` whole bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        Cycles(bytes * 8 * CYCLES_PER_BIT)
    }

    /// The (fractional) propagation delay over `distance_ft` feet.
    ///
    /// Light covers about 133 ft per CPU cycle, so a 150 ft hop costs
    /// ~1.1 cycles — three orders of magnitude below the 384-cycle bit
    /// time, which is exactly why the paper can treat `D/c` as negligible.
    /// Returned in fractional cycles so analyses can verify that claim
    /// rather than assume it.
    pub fn propagation_fractional(distance_ft: f64) -> f64 {
        distance_ft / SPEED_OF_LIGHT_FT_S * CPU_HZ
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This duration expressed in bit-times.
    pub fn as_bits(self) -> f64 {
        self.0 as f64 / CYCLES_PER_BIT as f64
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / CPU_HZ
    }

    /// Saturating subtraction (durations never go negative).
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_sub(rhs.0).map(Cycles)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_add(rhs.0).expect("cycle counter overflow"))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics on underflow; use [`Cycles::saturating_sub`] when the operands
    /// may be unordered.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_sub(rhs.0).expect("cycle counter underflow"))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_and_byte_durations() {
        assert_eq!(Cycles::from_bits(1.0), Cycles::new(384));
        assert_eq!(Cycles::from_bits(4.5), Cycles::new(1728));
        assert_eq!(Cycles::from_bytes(1), Cycles::new(3072));
        assert_eq!(Cycles::from_bytes(36), Cycles::new(36 * 3072));
    }

    #[test]
    fn as_bits_roundtrip() {
        assert_eq!(Cycles::new(1728).as_bits(), 4.5);
        assert_eq!(Cycles::new(384).as_bits(), 1.0);
    }

    #[test]
    fn propagation_is_subcycle_at_network_scale() {
        // The paper's negligibility claim for D/c: ~1 cycle at full radio
        // range, vastly below one bit time (384 cycles).
        let p = Cycles::propagation_fractional(150.0);
        assert!(p < 2.0, "got {p}");
        assert!(p > 0.0);
        assert!(p < CYCLES_PER_BIT as f64 / 100.0);
        // ... and grows linearly.
        let p2 = Cycles::propagation_fractional(300.0);
        assert!((p2 / p - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(30);
        assert_eq!(a + b, Cycles::new(130));
        assert_eq!(a - b, Cycles::new(70));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Cycles::new(70)));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(130));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }

    #[test]
    fn seconds_conversion() {
        // 7_372_800 cycles is exactly one second.
        assert!((Cycles::new(7_372_800).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Cycles::new(42)), "42cy");
    }
}
