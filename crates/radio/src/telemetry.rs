//! Metric handles for the radio substrate.

use secloc_obs::{Counter, MetricsRegistry};

/// Counters for medium-level traffic (see `DESIGN.md` § Observability).
///
/// - `radio.frames.sent` — transmissions put on the air;
/// - `radio.frames.delivered` — per-receiver successful deliveries
///   (direct or via tap);
/// - `radio.frames.dropped_range` — receiver out of radio range;
/// - `radio.frames.dropped_loss` — receiver in range but the loss model
///   dropped the copy (the Bernoulli model folds collisions and noise into
///   one per-link loss rate);
/// - `radio.frames.tap_replayed` — deliveries that travelled through an
///   attacker tap (wormhole end or local replayer);
/// - `radio.ranging.requests` — transmitted frames carrying a ranging
///   request body.
#[derive(Debug, Clone)]
pub struct RadioMetrics {
    pub(crate) frames_sent: Counter,
    pub(crate) frames_delivered: Counter,
    pub(crate) frames_dropped_range: Counter,
    pub(crate) frames_dropped_loss: Counter,
    pub(crate) frames_tap_replayed: Counter,
    pub(crate) ranging_requests: Counter,
}

impl RadioMetrics {
    /// Resolves the radio counters from `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        RadioMetrics {
            frames_sent: registry.counter("radio.frames.sent"),
            frames_delivered: registry.counter("radio.frames.delivered"),
            frames_dropped_range: registry.counter("radio.frames.dropped_range"),
            frames_dropped_loss: registry.counter("radio.frames.dropped_loss"),
            frames_tap_replayed: registry.counter("radio.frames.tap_replayed"),
            ranging_requests: registry.counter("radio.ranging.requests"),
        }
    }
}
