//! A slotted CSMA medium-access model with collisions.
//!
//! §2.3 of the reproduced paper leans on MAC-layer physics twice: the RTT
//! trick cancels "the uncertainty introduced by the MAC layer protocol",
//! and the local-replay argument assumes that during a transmission a
//! neighbour "either receives the original signal or receives nothing (in
//! case of collision)". This module provides that substrate: a slotted
//! CSMA/CA channel where overlapping transmissions in one collision domain
//! destroy each other and senders retry with binary exponential backoff.

use crate::Cycles;
use rand::Rng;

/// Outcome of one transmission attempt sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacOutcome {
    /// Delivered after `attempts` tries; `delay` covers backoff plus the
    /// final transmission.
    Delivered {
        /// Number of attempts used (1 = first try).
        attempts: u32,
        /// Total MAC-layer delay.
        delay: Cycles,
    },
    /// Dropped after exhausting the retry budget.
    Dropped {
        /// Attempts used (equals the configured maximum).
        attempts: u32,
    },
}

impl MacOutcome {
    /// Whether the frame got through.
    pub fn delivered(self) -> bool {
        matches!(self, MacOutcome::Delivered { .. })
    }
}

/// A slotted CSMA/CA channel model.
///
/// Collisions are modelled probabilistically: with `n` contenders in the
/// same domain each picking one of `cw` slots, a given sender's slot is
/// clear with probability `((cw − 1)/cw)^(n−1)`. Each retry doubles the
/// contention window up to a cap (binary exponential backoff).
///
/// # Examples
///
/// ```
/// use secloc_radio::mac::CsmaChannel;
/// use secloc_radio::Cycles;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mac = CsmaChannel::default();
/// let mut rng = StdRng::seed_from_u64(1);
/// let outcome = mac.transmit(Cycles::from_bytes(45), 5, &mut rng);
/// assert!(outcome.delivered()); // 5 contenders: near-certain delivery
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsmaChannel {
    /// Initial contention window, in slots.
    pub initial_cw: u32,
    /// Maximum contention window.
    pub max_cw: u32,
    /// Slot length.
    pub slot: Cycles,
    /// Maximum transmission attempts before dropping.
    pub max_attempts: u32,
}

impl Default for CsmaChannel {
    /// TinyOS-flavoured defaults: CW 16..256 slots of one byte-time,
    /// 8 attempts.
    fn default() -> Self {
        CsmaChannel {
            initial_cw: 16,
            max_cw: 256,
            slot: Cycles::from_bytes(1),
            max_attempts: 8,
        }
    }
}

impl CsmaChannel {
    /// Probability one attempt survives with `contenders` other active
    /// senders in the domain and contention window `cw`.
    fn clear_probability(&self, contenders: u32, cw: u32) -> f64 {
        if contenders == 0 {
            return 1.0;
        }
        ((cw as f64 - 1.0) / cw as f64).powi(contenders as i32)
    }

    /// Attempts to transmit a frame of duration `tx_time` against
    /// `contenders` other senders. Returns the delivery outcome with the
    /// accumulated MAC delay.
    pub fn transmit<R: Rng + ?Sized>(
        &self,
        tx_time: Cycles,
        contenders: u32,
        rng: &mut R,
    ) -> MacOutcome {
        let mut cw = self.initial_cw.max(2);
        let mut delay = Cycles::ZERO;
        for attempt in 1..=self.max_attempts {
            // Random backoff inside the window.
            let slots = rng.gen_range(0..cw) as u64;
            delay += Cycles::new(self.slot.as_u64() * slots);
            let p = self.clear_probability(contenders, cw);
            if rng.gen_bool(p) {
                return MacOutcome::Delivered {
                    attempts: attempt,
                    delay: delay + tx_time,
                };
            }
            // Collision: the whole frame time is wasted, window doubles.
            delay += tx_time;
            cw = (cw * 2).min(self.max_cw);
        }
        MacOutcome::Dropped {
            attempts: self.max_attempts,
        }
    }

    /// Expected delivery probability within the retry budget (closed
    /// form, window doubling included) — used by tests and the overhead
    /// analysis.
    pub fn delivery_probability(&self, contenders: u32) -> f64 {
        let mut fail = 1.0f64;
        let mut cw = self.initial_cw.max(2);
        for _ in 0..self.max_attempts {
            fail *= 1.0 - self.clear_probability(contenders, cw);
            cw = (cw * 2).min(self.max_cw);
        }
        1.0 - fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solo_sender_always_delivers_first_try() {
        let mac = CsmaChannel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            match mac.transmit(Cycles::from_bytes(45), 0, &mut rng) {
                MacOutcome::Delivered { attempts, delay } => {
                    assert_eq!(attempts, 1);
                    assert!(delay >= Cycles::from_bytes(45));
                }
                other => panic!("solo sender dropped: {other:?}"),
            }
        }
    }

    #[test]
    fn empirical_delivery_matches_closed_form() {
        let mac = CsmaChannel::default();
        let mut rng = StdRng::seed_from_u64(2);
        for contenders in [1u32, 5, 20] {
            let trials = 4000;
            let delivered = (0..trials)
                .filter(|_| {
                    mac.transmit(Cycles::from_bytes(45), contenders, &mut rng)
                        .delivered()
                })
                .count();
            let measured = delivered as f64 / trials as f64;
            let expected = mac.delivery_probability(contenders);
            assert!(
                (measured - expected).abs() < 0.03,
                "contenders={contenders}: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn congestion_degrades_delivery_and_raises_delay() {
        let mac = CsmaChannel {
            max_attempts: 3,
            ..CsmaChannel::default()
        };
        assert!(mac.delivery_probability(2) > mac.delivery_probability(50));
        assert!(mac.delivery_probability(50) > mac.delivery_probability(500));

        let mut rng = StdRng::seed_from_u64(3);
        let mean_delay = |contenders: u32, rng: &mut StdRng| -> f64 {
            let mut total = 0u64;
            let mut n = 0u64;
            for _ in 0..2000 {
                if let MacOutcome::Delivered { delay, .. } =
                    CsmaChannel::default().transmit(Cycles::from_bytes(45), contenders, rng)
                {
                    total += delay.as_u64();
                    n += 1;
                }
            }
            total as f64 / n as f64
        };
        let quiet = mean_delay(0, &mut rng);
        let busy = mean_delay(30, &mut rng);
        assert!(
            busy > quiet,
            "congested channel should be slower: {quiet} vs {busy}"
        );
    }

    #[test]
    fn heavy_congestion_eventually_drops() {
        let mac = CsmaChannel {
            max_attempts: 2,
            initial_cw: 2,
            max_cw: 2,
            ..CsmaChannel::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let dropped = (0..2000)
            .filter(|_| {
                !mac.transmit(Cycles::from_bytes(45), 100, &mut rng)
                    .delivered()
            })
            .count();
        assert!(
            dropped > 1500,
            "only {dropped}/2000 dropped under extreme load"
        );
    }

    #[test]
    fn delivery_probability_bounds() {
        let mac = CsmaChannel::default();
        assert_eq!(mac.delivery_probability(0), 1.0);
        for c in [1u32, 10, 100] {
            let p = mac.delivery_probability(c);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn outcome_helpers() {
        assert!(MacOutcome::Delivered {
            attempts: 1,
            delay: Cycles::ZERO
        }
        .delivered());
        assert!(!MacOutcome::Dropped { attempts: 8 }.delivered());
    }
}
