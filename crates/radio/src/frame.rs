//! Authenticated frames exchanged over the radio.
//!
//! "Every beacon packet is authenticated (and potentially encrypted) with
//! the pairwise key shared between two communicating nodes. Hence, beacon
//! packets forged by external attackers that do not have the right keys can
//! be easily filtered out" (§2). Frames here carry a MAC computed with
//! [`secloc_crypto::Mac`]; [`Frame::open`] rejects tampered or mis-keyed
//! frames, which is exactly the filtering the paper assumes.

use secloc_crypto::{Key, Mac, NodeId};
use secloc_geometry::Point2;
use std::fmt;

use crate::Cycles;

/// Error opening a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The MAC did not verify — forged, corrupted, or wrong key.
    BadMac,
    /// The frame was addressed to a different node.
    WrongDestination {
        /// The destination the frame actually names.
        actual: NodeId,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMac => write!(f, "message authentication failed"),
            FrameError::WrongDestination { actual } => {
                write!(f, "frame addressed to {actual}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Request for a beacon signal (stage 1 of location discovery, and the
/// opening move of the paper's detection protocol).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPayload {
    /// Wire identity of the requester. For a detecting beacon node this is
    /// one of its *detecting IDs*, not its beacon ID.
    pub requester: NodeId,
}

/// A beacon signal's packet: the beacon's claimed identity and location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconPayload {
    /// Claimed beacon identity.
    pub beacon: NodeId,
    /// Location declared in the beacon packet. A compromised beacon may
    /// declare anything here.
    pub declared: Point2,
}

/// The semantic content of a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameBody {
    /// A beacon-signal request.
    Request(RequestPayload),
    /// A beacon signal.
    Beacon(BeaconPayload),
    /// An alert reported to the base station: `reporter` accuses `target`.
    Alert {
        /// The detecting node raising the alert.
        reporter: NodeId,
        /// The beacon node being accused.
        target: NodeId,
    },
    /// A timestamp-exchange message carrying `t3 - t2` for RTT computation.
    TimestampReport {
        /// The receiver-side turnaround `t3 − t2`, in cycles.
        turnaround: Cycles,
    },
}

impl FrameBody {
    /// Canonical byte encoding (also the MAC input).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match self {
            FrameBody::Request(r) => {
                out.push(0x01);
                out.extend_from_slice(&r.requester.0.to_le_bytes());
            }
            FrameBody::Beacon(b) => {
                out.push(0x02);
                out.extend_from_slice(&b.beacon.0.to_le_bytes());
                out.extend_from_slice(&b.declared.x.to_le_bytes());
                out.extend_from_slice(&b.declared.y.to_le_bytes());
            }
            FrameBody::Alert { reporter, target } => {
                out.push(0x03);
                out.extend_from_slice(&reporter.0.to_le_bytes());
                out.extend_from_slice(&target.0.to_le_bytes());
            }
            FrameBody::TimestampReport { turnaround } => {
                out.push(0x04);
                out.extend_from_slice(&turnaround.as_u64().to_le_bytes());
            }
        }
        out
    }
}

/// A unicast, MAC-authenticated frame.
///
/// # Examples
///
/// ```
/// use secloc_crypto::{Key, NodeId};
/// use secloc_geometry::Point2;
/// use secloc_radio::{BeaconPayload, Frame, FrameBody};
///
/// let key = Key::from_u128(5);
/// let body = FrameBody::Beacon(BeaconPayload {
///     beacon: NodeId(3),
///     declared: Point2::new(10.0, 20.0),
/// });
/// let frame = Frame::seal(NodeId(3), NodeId(9), body, &key);
/// assert!(frame.open(NodeId(9), &key).is_ok());
/// assert!(frame.open(NodeId(9), &Key::from_u128(6)).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    src: NodeId,
    dst: NodeId,
    body: FrameBody,
    mac: Mac,
}

impl Frame {
    /// Link-layer overhead in bytes: preamble+sync (6), src (4), dst (4),
    /// MAC tag (8), CRC (2).
    pub const OVERHEAD_BYTES: u64 = 24;

    /// Builds and authenticates a frame from `src` to `dst`.
    pub fn seal(src: NodeId, dst: NodeId, body: FrameBody, key: &Key) -> Frame {
        let mac = Mac::compute(key, &Self::mac_input(src, dst, &body));
        Frame {
            src,
            dst,
            body,
            mac,
        }
    }

    /// Verifies and unwraps a frame received by `me` under `key`.
    ///
    /// # Errors
    ///
    /// - [`FrameError::WrongDestination`] when the frame names a different
    ///   destination;
    /// - [`FrameError::BadMac`] when authentication fails (forgery,
    ///   corruption, or wrong pairwise key).
    pub fn open(&self, me: NodeId, key: &Key) -> Result<FrameBody, FrameError> {
        if self.dst != me {
            return Err(FrameError::WrongDestination { actual: self.dst });
        }
        if !self
            .mac
            .verify(key, &Self::mac_input(self.src, self.dst, &self.body))
        {
            return Err(FrameError::BadMac);
        }
        Ok(self.body)
    }

    /// Claimed source identity (unauthenticated until [`Frame::open`]).
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination identity.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The body *without* verification — for attackers inspecting traffic
    /// and for tests. Honest nodes must use [`Frame::open`].
    pub fn peek_body(&self) -> FrameBody {
        self.body
    }

    /// Returns a bit-identical copy with a different claimed source —
    /// models an attacker re-labelling a captured frame. The MAC is *not*
    /// recomputed, so honest receivers will reject the result unless the
    /// attacker also controls the key.
    pub fn with_forged_src(&self, src: NodeId) -> Frame {
        Frame { src, ..*self }
    }

    /// Total on-air size in bytes (payload + [`Frame::OVERHEAD_BYTES`]).
    pub fn wire_bytes(&self) -> u64 {
        self.body.encode().len() as u64 + Self::OVERHEAD_BYTES
    }

    /// Transmission time of the whole frame at the modelled bit rate.
    pub fn transmission_time(&self) -> Cycles {
        Cycles::from_bytes(self.wire_bytes())
    }

    /// Raw MAC bits for wire serialization (see [`crate::wire`]).
    pub(crate) fn mac_bits(&self) -> u64 {
        self.mac.into_bits()
    }

    /// Reassembles a frame from parsed wire parts. The result is
    /// unverified; [`Frame::open`] remains the authentication gate.
    pub(crate) fn from_wire_parts(src: NodeId, dst: NodeId, body: FrameBody, mac: Mac) -> Frame {
        Frame {
            src,
            dst,
            body,
            mac,
        }
    }

    fn mac_input(src: NodeId, dst: NodeId, body: &FrameBody) -> Vec<u8> {
        let mut input = Vec::with_capacity(32);
        input.extend_from_slice(&src.0.to_le_bytes());
        input.extend_from_slice(&dst.0.to_le_bytes());
        input.extend_from_slice(&body.encode());
        input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_u128(0x1234)
    }

    #[test]
    fn seal_open_roundtrip_all_bodies() {
        let bodies = [
            FrameBody::Request(RequestPayload {
                requester: NodeId(7),
            }),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(-3.5, 900.25),
            }),
            FrameBody::Alert {
                reporter: NodeId(2),
                target: NodeId(3),
            },
            FrameBody::TimestampReport {
                turnaround: Cycles::new(12345),
            },
        ];
        for body in bodies {
            let f = Frame::seal(NodeId(1), NodeId(2), body, &key());
            assert_eq!(f.open(NodeId(2), &key()).unwrap(), body);
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let f = Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Request(RequestPayload {
                requester: NodeId(1),
            }),
            &key(),
        );
        assert_eq!(
            f.open(NodeId(2), &Key::from_u128(0x9999)),
            Err(FrameError::BadMac)
        );
    }

    #[test]
    fn wrong_destination_rejected() {
        let f = Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Request(RequestPayload {
                requester: NodeId(1),
            }),
            &key(),
        );
        assert_eq!(
            f.open(NodeId(3), &key()),
            Err(FrameError::WrongDestination { actual: NodeId(2) })
        );
    }

    #[test]
    fn forged_source_fails_authentication() {
        // A masquerading external attacker relabels a frame; the MAC binds
        // the true source, so verification fails (the paper's "easily
        // filtered out" property).
        let f = Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(0.0, 0.0),
            }),
            &key(),
        );
        let forged = f.with_forged_src(NodeId(99));
        assert_eq!(forged.open(NodeId(2), &key()), Err(FrameError::BadMac));
    }

    #[test]
    fn body_tampering_detected() {
        let honest = Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(10.0, 10.0),
            }),
            &key(),
        );
        // Reuse the honest MAC with a different body.
        let tampered = Frame {
            body: FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(500.0, 10.0),
            }),
            ..honest
        };
        assert_eq!(tampered.open(NodeId(2), &key()), Err(FrameError::BadMac));
    }

    #[test]
    fn distinct_bodies_encode_distinctly() {
        let a = FrameBody::Alert {
            reporter: NodeId(1),
            target: NodeId(2),
        };
        let b = FrameBody::Alert {
            reporter: NodeId(2),
            target: NodeId(1),
        };
        assert_ne!(a.encode(), b.encode());
        let r = FrameBody::Request(RequestPayload {
            requester: NodeId(1),
        });
        assert_ne!(a.encode()[0], r.encode()[0], "tag bytes differ");
    }

    #[test]
    fn wire_size_and_transmission_time() {
        let f = Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(1.0, 2.0),
            }),
            &key(),
        );
        // 1 tag + 4 id + 16 coords + 24 overhead = 45 bytes.
        assert_eq!(f.wire_bytes(), 45);
        assert_eq!(f.transmission_time(), Cycles::from_bytes(45));
        // A whole-packet replay delay vastly exceeds the 4.5-bit margin.
        assert!(f.transmission_time().as_bits() > 100.0);
    }

    #[test]
    fn accessors() {
        let f = Frame::seal(
            NodeId(5),
            NodeId(6),
            FrameBody::Request(RequestPayload {
                requester: NodeId(5),
            }),
            &key(),
        );
        assert_eq!(f.src(), NodeId(5));
        assert_eq!(f.dst(), NodeId(6));
        assert!(matches!(f.peek_body(), FrameBody::Request(_)));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            FrameError::BadMac.to_string(),
            "message authentication failed"
        );
        assert!(FrameError::WrongDestination { actual: NodeId(4) }
            .to_string()
            .contains("n4"));
    }
}
