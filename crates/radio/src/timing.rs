//! Hardware delay model and round-trip-time measurement (paper §2.2.2).
//!
//! The paper's RTT trick: the requester computes
//! `RTT = (t4 − t1) − (t3 − t2)` where `t1..t4` are SPDR shift-register
//! timestamps. MAC backoff and processing delay cancel, leaving
//!
//! `RTT = d1 + d2 + d3 + d4 + 2·D/c`
//!
//! where `d1..d4` are radio-hardware shift delays and `D/c` is propagation
//! (negligible). Because the `d` terms depend only on the radio hardware,
//! RTT falls in a narrow band `[x_min, x_max]`; a replayed reply adds at
//! least a full store-and-forward delay and lands far above `x_max`.
//!
//! The paper's measured constants (10 000 trials on MICA motes) are OCR-
//! damaged in our source; `DESIGN.md` reconstructs them as
//! `x_min = 5 950`, `x_max = 7 656` cycles — consistent with the two facts
//! that *did* survive: 384 cycles/bit and a detection margin of ≈4.5
//! bit-times (1 728 cycles).

use crate::{Cycles, CYCLES_PER_BIT};
use rand::Rng;

/// Reconstructed paper value for the smallest attack-free RTT, in cycles.
pub const PAPER_X_MIN: u64 = 5_950;

/// Reconstructed paper value for the largest attack-free RTT, in cycles.
pub const PAPER_X_MAX: u64 = 7_656;

/// Model of one directional hardware shift delay `d_i = base + jitter`,
/// with jitter uniform on `0..=jitter_max` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayComponent {
    /// Deterministic part of the delay, in cycles.
    pub base: u64,
    /// Maximum additional jitter, in cycles (inclusive).
    pub jitter_max: u64,
}

impl DelayComponent {
    /// Samples one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.base + rng.gen_range(0..=self.jitter_max)
    }
}

/// The four-delay RTT model of Fig. 3.
///
/// # Examples
///
/// ```
/// use secloc_radio::timing::RttModel;
/// use secloc_radio::Cycles;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let m = RttModel::paper_default();
/// let mut rng = StdRng::seed_from_u64(7);
/// // An honest neighbour at 100 ft:
/// let honest = m.sample(100.0, Cycles::ZERO, &mut rng);
/// assert!(honest <= m.max_rtt());
/// // A store-and-forward replay of a 36-byte packet:
/// let replayed = m.sample(100.0, Cycles::from_bytes(36), &mut rng);
/// assert!(replayed > m.max_rtt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttModel {
    delays: [DelayComponent; 4],
}

impl RttModel {
    /// Builds a model from four delay components (d1..d4 of Fig. 3).
    pub fn new(delays: [DelayComponent; 4]) -> Self {
        RttModel { delays }
    }

    /// The model calibrated to the reconstructed paper constants:
    /// attack-free RTT spans exactly `[PAPER_X_MIN, PAPER_X_MAX]` =
    /// `[5 950, 7 656]` cycles, a spread of ~4.44 bit-times.
    pub fn paper_default() -> Self {
        RttModel::new([
            DelayComponent {
                base: 1487,
                jitter_max: 426,
            },
            DelayComponent {
                base: 1487,
                jitter_max: 427,
            },
            DelayComponent {
                base: 1488,
                jitter_max: 426,
            },
            DelayComponent {
                base: 1488,
                jitter_max: 427,
            },
        ])
    }

    /// The smallest RTT the model can produce (propagation excluded).
    pub fn min_rtt(&self) -> Cycles {
        Cycles::new(self.delays.iter().map(|d| d.base).sum())
    }

    /// The largest attack-free RTT the hardware alone can produce
    /// (propagation excluded) — the model-side counterpart of the paper's
    /// measured `x_max`.
    pub fn max_rtt(&self) -> Cycles {
        Cycles::new(self.delays.iter().map(|d| d.base + d.jitter_max).sum())
    }

    /// The largest attack-free RTT including round-trip propagation over a
    /// radio range of `range_ft` feet — the sound detection threshold for
    /// a deployment with that range. Propagation is ~1 cycle per 133 ft,
    /// so this exceeds [`RttModel::max_rtt`] by only a few cycles.
    pub fn max_rtt_with_range(&self, range_ft: f64) -> Cycles {
        let prop = 2.0 * Cycles::propagation_fractional(range_ft);
        self.max_rtt() + Cycles::new(prop.ceil() as u64)
    }

    /// The attack-free RTT spread expressed in bit-times — the paper's
    /// "4.5 bits" detection margin.
    pub fn margin_bits(&self) -> f64 {
        (self.max_rtt().as_u64() - self.min_rtt().as_u64()) as f64 / CYCLES_PER_BIT as f64
    }

    /// Samples one measured RTT for a reply travelling `distance_ft` each
    /// way, with `replay_delay` extra latency inserted by an adversary
    /// (use [`Cycles::ZERO`] for an honest exchange).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        distance_ft: f64,
        replay_delay: Cycles,
        rng: &mut R,
    ) -> Cycles {
        let hw: u64 = self.delays.iter().map(|d| d.sample(rng)).sum();
        let prop = 2.0 * Cycles::propagation_fractional(distance_ft);
        Cycles::new(hw + prop.round() as u64) + replay_delay
    }

    /// Runs `trials` attack-free exchanges and returns the empirical
    /// cumulative distribution as `(rtt, F(rtt))` pairs plus the observed
    /// extremes — the data behind Fig. 4.
    pub fn empirical_cdf<R: Rng + ?Sized>(
        &self,
        trials: usize,
        distance_ft: f64,
        rng: &mut R,
    ) -> RttCdf {
        assert!(trials > 0, "need at least one trial");
        let mut samples: Vec<u64> = (0..trials)
            .map(|_| self.sample(distance_ft, Cycles::ZERO, rng).as_u64())
            .collect();
        samples.sort_unstable();
        RttCdf { samples }
    }
}

/// Empirical RTT distribution from attack-free exchanges.
#[derive(Debug, Clone)]
pub struct RttCdf {
    samples: Vec<u64>, // sorted
}

impl RttCdf {
    /// Smallest observed RTT — the estimator of the paper's `x_min`.
    pub fn x_min(&self) -> Cycles {
        Cycles::new(self.samples[0])
    }

    /// Largest observed RTT — the estimator of the paper's `x_max`,
    /// i.e. the local-replay detection threshold.
    pub fn x_max(&self) -> Cycles {
        Cycles::new(*self.samples.last().expect("non-empty"))
    }

    /// The empirical CDF evaluated at `rtt`.
    pub fn cdf(&self, rtt: Cycles) -> f64 {
        let n = self.samples.partition_point(|&s| s <= rtt.as_u64());
        n as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile of the distribution, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        Cycles::new(self.samples[idx])
    }

    /// Number of trials behind this distribution.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution is empty (never true for constructed CDFs).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Evenly spaced `(rtt_cycles, F)` points for plotting, `points >= 2`.
    pub fn curve(&self, points: usize) -> Vec<(u64, f64)> {
        assert!(points >= 2, "need at least 2 curve points");
        let lo = self.x_min().as_u64();
        let hi = self.x_max().as_u64();
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as u64 / (points as u64 - 1);
                (x, self.cdf(Cycles::new(x)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_matches_reconstructed_constants() {
        let m = RttModel::paper_default();
        assert_eq!(m.min_rtt(), Cycles::new(PAPER_X_MIN));
        assert_eq!(m.max_rtt(), Cycles::new(PAPER_X_MAX));
        // The range-aware threshold adds only a few propagation cycles.
        let thresh = m.max_rtt_with_range(150.0);
        assert!(thresh.as_u64() - PAPER_X_MAX <= 3);
        let margin = m.margin_bits();
        assert!((margin - 4.5).abs() < 0.1, "margin {margin} bits");
    }

    #[test]
    fn samples_respect_bounds() {
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5000 {
            let rtt = m.sample(150.0, Cycles::ZERO, &mut rng);
            assert!(rtt >= m.min_rtt(), "{rtt} < min");
            assert!(rtt <= m.max_rtt_with_range(150.0), "{rtt} > threshold");
        }
    }

    #[test]
    fn replay_delay_added_verbatim() {
        let m = RttModel::paper_default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let honest = m.sample(10.0, Cycles::ZERO, &mut a);
        let replayed = m.sample(10.0, Cycles::new(1000), &mut b);
        assert_eq!(replayed, honest + Cycles::new(1000));
    }

    #[test]
    fn whole_packet_replay_always_detectable() {
        // §2.3: replaying between neighbours costs at least one whole
        // packet transmission, "typically much larger than 4.5 bits".
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let packet = Cycles::from_bytes(36); // TinyOS default payload class
        for _ in 0..2000 {
            let rtt = m.sample(150.0, packet, &mut rng);
            assert!(rtt > m.max_rtt_with_range(150.0));
        }
    }

    #[test]
    fn cdf_monotone_zero_to_one() {
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        let cdf = m.empirical_cdf(10_000, 100.0, &mut rng);
        assert_eq!(cdf.len(), 10_000);
        assert_eq!(cdf.cdf(cdf.x_max()), 1.0);
        assert!(cdf.cdf(Cycles::new(cdf.x_min().as_u64() - 1)) == 0.0);
        let curve = cdf.curve(50);
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1),
            "CDF not monotone"
        );
        assert!((curve[0].1 - 0.0).abs() < 0.01 || curve[0].1 > 0.0);
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empirical_extremes_near_model_bounds() {
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(13);
        let cdf = m.empirical_cdf(100_000, 50.0, &mut rng);
        // With 100k trials the extremes land within ~120 cycles of the true
        // bounds (a 120-cycle tail of the 4-fold uniform sum has probability
        // ~2.6e-4, so dozens of samples fall there).
        assert!(cdf.x_min().as_u64() < PAPER_X_MIN + 120, "{}", cdf.x_min());
        assert!(cdf.x_max().as_u64() + 120 > PAPER_X_MAX, "{}", cdf.x_max());
    }

    #[test]
    fn quantiles_ordered() {
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(17);
        let cdf = m.empirical_cdf(5000, 10.0, &mut rng);
        let q25 = cdf.quantile(0.25);
        let q50 = cdf.quantile(0.50);
        let q75 = cdf.quantile(0.75);
        assert!(q25 <= q50 && q50 <= q75);
        assert_eq!(cdf.quantile(0.0), cdf.x_min());
        assert_eq!(cdf.quantile(1.0), cdf.x_max());
    }

    #[test]
    fn margin_scales_with_jitter() {
        let tight = RttModel::new(
            [DelayComponent {
                base: 100,
                jitter_max: 10,
            }; 4],
        );
        assert!((tight.margin_bits() - 40.0 / 384.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_cdf_rejected() {
        let m = RttModel::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        m.empirical_cdf(0, 10.0, &mut rng);
    }
}
