//! Distance measurement from beacon signals.
//!
//! The paper assumes "location estimation is based on the distances measured
//! from beacon signals (through, e.g., RSSI)" with a known **maximum
//! measurement error** ε_max (reconstructed as 10 ft; every API takes it as
//! a parameter). Two models are provided:
//!
//! - [`BoundedRanging`] — error uniform on `[-ε, +ε]`, the exact abstraction
//!   the paper's detector analysis uses;
//! - [`RssiRanging`] — a physical log-distance path-loss chain
//!   (`RSSI → distance`) whose resulting error is *clamped* to ε so the
//!   detector's premise (a hard error bound) still holds, as it must for
//!   the consistency check to be sound.
//!
//! Both are deterministic given an RNG, and both implement [`Ranging`].

use rand::Rng;

/// A distance-measurement channel between two nodes.
pub trait Ranging {
    /// Produces a measured distance for a true distance of `true_ft` feet.
    fn measure<R: Rng + ?Sized>(&self, true_ft: f64, rng: &mut R) -> f64;

    /// The guaranteed maximum absolute measurement error, in feet.
    fn max_error(&self) -> f64;
}

/// Uniform bounded-error ranging: `measured = true ± U(0, ε)`.
///
/// # Examples
///
/// ```
/// use secloc_radio::ranging::{BoundedRanging, Ranging};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let r = BoundedRanging::new(10.0);
/// let mut rng = StdRng::seed_from_u64(2);
/// let d = r.measure(100.0, &mut rng);
/// assert!((d - 100.0).abs() <= 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedRanging {
    max_error_ft: f64,
}

impl BoundedRanging {
    /// Creates a model with maximum error `max_error_ft` (the paper's ε).
    ///
    /// # Panics
    ///
    /// Panics if `max_error_ft` is negative or not finite.
    pub fn new(max_error_ft: f64) -> Self {
        assert!(
            max_error_ft.is_finite() && max_error_ft >= 0.0,
            "max error must be >= 0, got {max_error_ft}"
        );
        BoundedRanging { max_error_ft }
    }

    /// Scales the error bound by `figure` (the regional noise-figure
    /// convention shared with [`RssiRanging::with_noise_figure`]). Figure
    /// 1.0 is the identity.
    ///
    /// # Panics
    ///
    /// Panics unless `figure` is positive and finite.
    pub fn with_noise_figure(self, figure: f64) -> Self {
        assert!(
            figure.is_finite() && figure > 0.0,
            "noise figure must be positive, got {figure}"
        );
        BoundedRanging::new(self.max_error_ft * figure)
    }
}

impl Ranging for BoundedRanging {
    fn measure<R: Rng + ?Sized>(&self, true_ft: f64, rng: &mut R) -> f64 {
        assert!(true_ft >= 0.0, "distance must be >= 0, got {true_ft}");
        let err = if self.max_error_ft == 0.0 {
            0.0
        } else {
            rng.gen_range(-self.max_error_ft..=self.max_error_ft)
        };
        (true_ft + err).max(0.0)
    }

    fn max_error(&self) -> f64 {
        self.max_error_ft
    }
}

/// Log-distance path-loss RSSI ranging.
///
/// Transmit side: `P_rx(dBm) = P0 − 10·n·log10(d/d0) + X`, with `X` a
/// truncated Gaussian of standard deviation `sigma_db`. Receive side
/// inverts the curve to estimate `d`, then clamps the estimate into
/// `[d − ε, d + ε]` (a real deployment achieves the bound by calibration
/// and outlier rejection; we model the *achieved* bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiRanging {
    /// Path-loss exponent (2 = free space, 3–4 = cluttered outdoor).
    pub exponent: f64,
    /// Shadowing standard deviation in dB (truncated at ±3σ).
    pub sigma_db: f64,
    /// Hard error bound ε enforced after inversion, in feet.
    pub max_error_ft: f64,
    /// Reference distance d0 in feet.
    pub reference_ft: f64,
    /// Received power at the reference distance, in dBm.
    pub power_at_reference_dbm: f64,
}

impl RssiRanging {
    /// A typical outdoor MICA2 configuration: exponent 3, 2 dB shadowing,
    /// ε = 10 ft.
    pub fn mica2_outdoor() -> Self {
        RssiRanging {
            exponent: 3.0,
            sigma_db: 2.0,
            max_error_ft: 10.0,
            reference_ft: 3.0,
            power_at_reference_dbm: -45.0,
        }
    }

    /// Scales the noise of this configuration by `figure`: the shadowing
    /// deviation and the achieved error bound both grow (or shrink) by the
    /// multiplier. Figure 1.0 returns the configuration unchanged; figures
    /// above 1 model interference-degraded regions where the calibrated
    /// `ε_max` bound no longer holds at its nominal value.
    ///
    /// # Panics
    ///
    /// Panics unless `figure` is positive and finite.
    pub fn with_noise_figure(self, figure: f64) -> Self {
        assert!(
            figure.is_finite() && figure > 0.0,
            "noise figure must be positive, got {figure}"
        );
        RssiRanging {
            sigma_db: self.sigma_db * figure,
            max_error_ft: self.max_error_ft * figure,
            ..self
        }
    }

    /// The noiseless RSSI at `d` feet, in dBm.
    pub fn expected_rssi(&self, d: f64) -> f64 {
        assert!(d > 0.0, "distance must be positive, got {d}");
        self.power_at_reference_dbm - 10.0 * self.exponent * (d / self.reference_ft).log10()
    }

    /// Inverts an RSSI reading into a distance estimate, in feet.
    pub fn invert(&self, rssi_dbm: f64) -> f64 {
        self.reference_ft
            * 10f64.powf((self.power_at_reference_dbm - rssi_dbm) / (10.0 * self.exponent))
    }
}

impl Ranging for RssiRanging {
    fn measure<R: Rng + ?Sized>(&self, true_ft: f64, rng: &mut R) -> f64 {
        assert!(true_ft >= 0.0, "distance must be >= 0, got {true_ft}");
        let d = true_ft.max(0.1); // below 0.1 ft the log model is meaningless
        let shadow = gaussian(rng).clamp(-3.0, 3.0) * self.sigma_db;
        let rssi = self.expected_rssi(d) + shadow;
        let est = self.invert(rssi);
        est.clamp(
            (true_ft - self.max_error_ft).max(0.0),
            true_ft + self.max_error_ft,
        )
    }

    fn max_error(&self) -> f64 {
        self.max_error_ft
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounded_error_within_epsilon() {
        let r = BoundedRanging::new(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        for d in [0.0, 5.0, 50.0, 149.9] {
            for _ in 0..500 {
                let m = r.measure(d, &mut rng);
                assert!((m - d).abs() <= 10.0 + 1e-9, "d={d} m={m}");
                assert!(m >= 0.0);
            }
        }
    }

    #[test]
    fn bounded_zero_epsilon_is_exact() {
        let r = BoundedRanging::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(r.measure(42.0, &mut rng), 42.0);
    }

    #[test]
    fn bounded_errors_cover_both_signs() {
        let r = BoundedRanging::new(5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..1000)
            .map(|_| r.measure(100.0, &mut rng) - 100.0)
            .collect();
        assert!(samples.iter().any(|&e| e > 2.0));
        assert!(samples.iter().any(|&e| e < -2.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.5, "biased: {mean}");
    }

    #[test]
    fn rssi_monotone_decreasing() {
        let r = RssiRanging::mica2_outdoor();
        assert!(r.expected_rssi(10.0) > r.expected_rssi(20.0));
        assert!(r.expected_rssi(20.0) > r.expected_rssi(100.0));
    }

    #[test]
    fn rssi_inversion_is_exact_without_noise() {
        let r = RssiRanging::mica2_outdoor();
        for d in [1.0, 3.0, 10.0, 77.0, 150.0] {
            let est = r.invert(r.expected_rssi(d));
            assert!((est - d).abs() < 1e-9, "d={d} est={est}");
        }
    }

    #[test]
    fn rssi_measurement_respects_hard_bound() {
        let r = RssiRanging::mica2_outdoor();
        let mut rng = StdRng::seed_from_u64(3);
        for d in [1.0, 25.0, 75.0, 150.0] {
            for _ in 0..500 {
                let m = r.measure(d, &mut rng);
                assert!((m - d).abs() <= r.max_error() + 1e-9, "d={d} m={m}");
            }
        }
    }

    #[test]
    fn rssi_estimates_are_noisy_but_centered() {
        let r = RssiRanging::mica2_outdoor();
        let mut rng = StdRng::seed_from_u64(4);
        let d = 60.0;
        let samples: Vec<f64> = (0..2000).map(|_| r.measure(d, &mut rng)).collect();
        let distinct = samples.iter().filter(|&&m| (m - d).abs() > 0.5).count();
        assert!(distinct > 1000, "noise collapsed: {distinct}");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - d).abs() < 2.0, "biased: {mean}");
    }

    #[test]
    fn noise_figure_scales_both_models() {
        let b = BoundedRanging::new(10.0).with_noise_figure(2.5);
        assert_eq!(b.max_error(), 25.0);
        let r = RssiRanging::mica2_outdoor().with_noise_figure(3.0);
        assert_eq!(r.max_error(), 30.0);
        assert_eq!(r.sigma_db, 6.0);
        // Figure 1.0 is the identity.
        assert_eq!(
            RssiRanging::mica2_outdoor().with_noise_figure(1.0),
            RssiRanging::mica2_outdoor()
        );
        // The scaled bound is actually honoured by measurements.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let m = r.measure(60.0, &mut rng);
            assert!((m - 60.0).abs() <= 30.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "noise figure")]
    fn zero_noise_figure_rejected() {
        BoundedRanging::new(10.0).with_noise_figure(0.0);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_epsilon_rejected() {
        BoundedRanging::new(-1.0);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_distance_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        BoundedRanging::new(1.0).measure(-5.0, &mut rng);
    }
}
