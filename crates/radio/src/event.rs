//! Deterministic discrete-event scheduler.

use crate::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A discrete-event queue ordered by simulated time.
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which keeps simulations fully deterministic for a fixed seed.
/// Popping never goes backwards in time.
///
/// # Examples
///
/// ```
/// use secloc_radio::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(20), "b");
/// q.schedule(Cycles::new(10), "a");
/// assert_eq!(q.pop(), Some((Cycles::new(10), "a")));
/// assert_eq!(q.pop(), Some((Cycles::new(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycles,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// Creates an empty queue at time zero with room for `capacity` events
    /// before reallocating — for the schedule-everything-then-drain pattern
    /// where the event count is known up front.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at}, simulation time is already {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` at `delay` after the current simulation time.
    pub fn schedule_after(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing simulation time to it.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drains every pending event in exactly the order repeated
    /// [`EventQueue::pop`] calls would return them — by time, FIFO within
    /// the same instant — and advances simulation time past the last one.
    ///
    /// For the schedule-everything-then-drain pattern (the network
    /// simulation's phase loops) this replaces per-pop heap maintenance
    /// with one sort, which is markedly faster and allocation-free beyond
    /// the storage the heap already owns.
    pub fn drain_ordered(&mut self) -> impl Iterator<Item = (Cycles, E)> {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        // `seq` is unique per entry, so the (at, seq) order is total and an
        // unstable sort reproduces the heap's deterministic pop order.
        entries.sort_unstable_by(|Reverse(a), Reverse(b)| a.cmp(b));
        if let Some(Reverse(last)) = entries.last() {
            self.now = last.at;
        }
        entries.into_iter().map(|Reverse(e)| (e.at, e.event))
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_for_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycles::new(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(7), ());
        q.schedule(Cycles::new(3), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(3));
        q.pop();
        assert_eq!(q.now(), Cycles::new(7));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), "first");
        q.pop();
        q.schedule_after(Cycles::new(50), "second");
        assert_eq!(q.pop(), Some((Cycles::new(150), "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), ());
        q.pop();
        q.schedule(Cycles::new(99), ());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycles::ZERO);
        q.schedule(Cycles::new(4), 'a');
        q.schedule(Cycles::new(2), 'b');
        assert_eq!(q.pop(), Some((Cycles::new(2), 'b')));
        assert_eq!(q.pop(), Some((Cycles::new(4), 'a')));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(Cycles::new(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_ordered_matches_pop_order() {
        let build = || {
            let mut q = EventQueue::new();
            // Deliberate time ties to exercise the FIFO tiebreak.
            for (at, e) in [(30u64, 0), (10, 1), (20, 2), (10, 3), (30, 4), (10, 5)] {
                q.schedule(Cycles::new(at), e);
            }
            q
        };
        let mut popped = build();
        let by_pop: Vec<(Cycles, i32)> = std::iter::from_fn(|| popped.pop()).collect();
        let mut drained = build();
        let by_drain: Vec<(Cycles, i32)> = drained.drain_ordered().collect();
        assert_eq!(by_drain, by_pop);
        assert_eq!(drained.now(), popped.now());
        assert!(drained.is_empty());
        // Time advanced: scheduling before the last drained event panics,
        // exactly as it would after popping everything.
        assert_eq!(drained.now(), Cycles::new(30));
    }

    #[test]
    fn drain_ordered_on_empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.drain_ordered().count(), 0);
        assert_eq!(q.now(), Cycles::ZERO);
    }

    #[test]
    fn interleaved_schedule_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Cycles::new(20), 2);
        q.schedule(Cycles::new(30), 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }
}
