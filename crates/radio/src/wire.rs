//! Byte-level wire format for frames.
//!
//! [`crate::Frame`] is a typed in-memory object; a real radio moves bytes.
//! This module defines the on-air layout and a strict parser, so the
//! library can interoperate with byte-oriented transports (serial captures,
//! pcap-style traces, fuzzers):
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x5E 0xC1
//! 2       1     version (currently 1)
//! 3       4     source node id (LE)
//! 7       4     destination node id (LE)
//! 11      2     body length (LE)
//! 13      n     body (tagged encoding, same bytes the MAC covers)
//! 13+n    8     MAC tag (LE)
//! ```
//!
//! The parser is strict — trailing bytes, bad magic, unknown versions,
//! unknown body tags and length mismatches are all errors — because a
//! permissive parser in a security protocol is an attack surface.

use crate::frame::{BeaconPayload, Frame, FrameBody, RequestPayload};
use crate::Cycles;
use secloc_crypto::{Mac, NodeId};
use secloc_geometry::Point2;
use std::fmt;

/// Frame wire-format magic bytes.
pub const MAGIC: [u8; 2] = [0x5e, 0xc1];

/// Current wire-format version.
pub const VERSION: u8 = 1;

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated,
    /// Magic bytes missing.
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u8),
    /// Body length field disagrees with the buffer.
    LengthMismatch,
    /// Unknown body tag byte.
    UnknownBodyTag(u8),
    /// Body bytes malformed for their tag.
    MalformedBody,
    /// Bytes left over after the MAC tag.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer shorter than frame header"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::LengthMismatch => write!(f, "body length disagrees with buffer"),
            WireError::UnknownBodyTag(t) => write!(f, "unknown body tag {t:#04x}"),
            WireError::MalformedBody => write!(f, "malformed body"),
            WireError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialises a frame to its on-air bytes.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let body = encode_body(&frame.peek_body());
    let mut out = Vec::with_capacity(13 + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&frame.src().0.to_le_bytes());
    out.extend_from_slice(&frame.dst().0.to_le_bytes());
    out.extend_from_slice(&(body.len() as u16).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&frame.mac_bits().to_le_bytes());
    out
}

/// Parses on-air bytes back into a frame.
///
/// Parsing performs **no authentication** — call [`Frame::open`] on the
/// result; a parsed-but-tampered frame fails there.
///
/// # Errors
///
/// Any structural defect yields a [`WireError`]; see the variants.
pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.len() < 13 + 8 {
        return Err(WireError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[2] != VERSION {
        return Err(WireError::UnsupportedVersion(bytes[2]));
    }
    let src = NodeId(u32::from_le_bytes(bytes[3..7].try_into().expect("4 bytes")));
    let dst = NodeId(u32::from_le_bytes(
        bytes[7..11].try_into().expect("4 bytes"),
    ));
    let body_len = u16::from_le_bytes(bytes[11..13].try_into().expect("2 bytes")) as usize;
    let expected_total = 13 + body_len + 8;
    if bytes.len() < expected_total {
        return Err(WireError::LengthMismatch);
    }
    if bytes.len() > expected_total {
        return Err(WireError::TrailingBytes);
    }
    let body = decode_body(&bytes[13..13 + body_len])?;
    let tag = u64::from_le_bytes(
        bytes[13 + body_len..expected_total]
            .try_into()
            .expect("8 bytes"),
    );
    Ok(Frame::from_wire_parts(src, dst, body, Mac::from_bits(tag)))
}

fn encode_body(body: &FrameBody) -> Vec<u8> {
    // Mirrors FrameBody::encode (the MAC input); kept in lockstep by the
    // roundtrip tests below.
    let mut out = Vec::with_capacity(24);
    match body {
        FrameBody::Request(r) => {
            out.push(0x01);
            out.extend_from_slice(&r.requester.0.to_le_bytes());
        }
        FrameBody::Beacon(b) => {
            out.push(0x02);
            out.extend_from_slice(&b.beacon.0.to_le_bytes());
            out.extend_from_slice(&b.declared.x.to_le_bytes());
            out.extend_from_slice(&b.declared.y.to_le_bytes());
        }
        FrameBody::Alert { reporter, target } => {
            out.push(0x03);
            out.extend_from_slice(&reporter.0.to_le_bytes());
            out.extend_from_slice(&target.0.to_le_bytes());
        }
        FrameBody::TimestampReport { turnaround } => {
            out.push(0x04);
            out.extend_from_slice(&turnaround.as_u64().to_le_bytes());
        }
    }
    out
}

fn decode_body(bytes: &[u8]) -> Result<FrameBody, WireError> {
    let (&tag, rest) = bytes.split_first().ok_or(WireError::MalformedBody)?;
    let u32_at = |b: &[u8], at: usize| -> Result<u32, WireError> {
        b.get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or(WireError::MalformedBody)
    };
    let f64_at = |b: &[u8], at: usize| -> Result<f64, WireError> {
        b.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(f64::from_le_bytes)
            .ok_or(WireError::MalformedBody)
    };
    match tag {
        0x01 => {
            if rest.len() != 4 {
                return Err(WireError::MalformedBody);
            }
            Ok(FrameBody::Request(RequestPayload {
                requester: NodeId(u32_at(rest, 0)?),
            }))
        }
        0x02 => {
            if rest.len() != 20 {
                return Err(WireError::MalformedBody);
            }
            Ok(FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(u32_at(rest, 0)?),
                declared: Point2::new(f64_at(rest, 4)?, f64_at(rest, 12)?),
            }))
        }
        0x03 => {
            if rest.len() != 8 {
                return Err(WireError::MalformedBody);
            }
            Ok(FrameBody::Alert {
                reporter: NodeId(u32_at(rest, 0)?),
                target: NodeId(u32_at(rest, 4)?),
            })
        }
        0x04 => {
            if rest.len() != 8 {
                return Err(WireError::MalformedBody);
            }
            let v = u64::from_le_bytes(rest.try_into().expect("8 bytes"));
            Ok(FrameBody::TimestampReport {
                turnaround: Cycles::new(v),
            })
        }
        other => Err(WireError::UnknownBodyTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_crypto::Key;

    fn sample_frames() -> Vec<Frame> {
        let k = Key::from_u128(0x77);
        vec![
            Frame::seal(
                NodeId(1),
                NodeId(2),
                FrameBody::Request(RequestPayload {
                    requester: NodeId(1),
                }),
                &k,
            ),
            Frame::seal(
                NodeId(3),
                NodeId(4),
                FrameBody::Beacon(BeaconPayload {
                    beacon: NodeId(3),
                    declared: Point2::new(-12.5, 987.25),
                }),
                &k,
            ),
            Frame::seal(
                NodeId(5),
                NodeId(6),
                FrameBody::Alert {
                    reporter: NodeId(5),
                    target: NodeId(9),
                },
                &k,
            ),
            Frame::seal(
                NodeId(7),
                NodeId(8),
                FrameBody::TimestampReport {
                    turnaround: Cycles::new(123_456_789),
                },
                &k,
            ),
        ]
    }

    #[test]
    fn roundtrip_all_body_types() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            let parsed = decode(&bytes).expect("roundtrip");
            assert_eq!(parsed, frame);
        }
    }

    #[test]
    fn parsed_frames_still_authenticate() {
        let k = Key::from_u128(0x77);
        for frame in sample_frames() {
            let parsed = decode(&encode(&frame)).unwrap();
            assert!(parsed.open(frame.dst(), &k).is_ok());
        }
    }

    #[test]
    fn tampered_bytes_parse_but_fail_auth() {
        // Flipping a payload bit survives parsing (structure intact) but
        // dies at MAC verification — the layering the design intends.
        let k = Key::from_u128(0x77);
        let frame = &sample_frames()[1];
        let mut bytes = encode(frame);
        bytes[14] ^= 0x01; // inside the body
        let parsed = decode(&bytes).expect("structurally fine");
        assert!(parsed.open(frame.dst(), &k).is_err());
    }

    #[test]
    fn structural_defects_rejected() {
        let frame = &sample_frames()[0];
        let good = encode(frame);

        assert_eq!(decode(&good[..5]), Err(WireError::Truncated));

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert_eq!(decode(&bad_magic), Err(WireError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&bad_version), Err(WireError::UnsupportedVersion(9)));

        let mut trailing = good.clone();
        trailing.push(0xff);
        assert_eq!(decode(&trailing), Err(WireError::TrailingBytes));

        let mut short = good.clone();
        short.truncate(good.len() - 1);
        assert_eq!(decode(&short), Err(WireError::LengthMismatch));

        let mut bad_tag = good.clone();
        bad_tag[13] = 0x7f;
        assert_eq!(decode(&bad_tag), Err(WireError::UnknownBodyTag(0x7f)));
    }

    #[test]
    fn wrong_body_length_for_tag_rejected() {
        // Claim a beacon body (tag 0x02) but supply request-sized bytes.
        let frame = &sample_frames()[0]; // request, body = 5 bytes
        let mut bytes = encode(frame);
        bytes[13] = 0x02; // relabel tag
        assert_eq!(decode(&bytes), Err(WireError::MalformedBody));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            WireError::Truncated,
            WireError::BadMagic,
            WireError::UnsupportedVersion(3),
            WireError::LengthMismatch,
            WireError::UnknownBodyTag(0xaa),
            WireError::MalformedBody,
            WireError::TrailingBytes,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Exhaustive single-byte corruption: every possible one-byte flip
    /// either fails to parse or fails to authenticate — no corruption is
    /// silently accepted.
    #[test]
    fn no_single_byte_corruption_accepted() {
        let k = Key::from_u128(0x77);
        for frame in sample_frames() {
            let bytes = encode(&frame);
            for i in 0..bytes.len() {
                for flip in [0x01u8, 0x80] {
                    let mut corrupted = bytes.clone();
                    corrupted[i] ^= flip;
                    match decode(&corrupted) {
                        Err(_) => {} // structurally rejected
                        Ok(parsed) => {
                            // Header corruption may change src/dst; open
                            // must fail either by destination or MAC.
                            assert!(
                                parsed.open(frame.dst(), &k).is_err(),
                                "byte {i} flip {flip:#x} silently accepted"
                            );
                        }
                    }
                }
            }
        }
    }
}
