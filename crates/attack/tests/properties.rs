//! Property-based tests for the attacker models.

use proptest::prelude::*;
use secloc_attack::{Action, BeaconStrategy, CollusionPolicy, CompromisedBeacon, Wormhole};
use secloc_crypto::NodeId;
use secloc_geometry::{Point2, Vector2};
use secloc_radio::Cycles;

proptest! {
    #[test]
    fn acceptance_probability_formula_holds(
        p_n in 0.0..1.0f64,
        p_w in 0.0..1.0f64,
        p_l in 0.0..1.0f64,
    ) {
        let s = BeaconStrategy::probabilistic(p_n, p_w, p_l);
        let expected = (1.0 - p_n) * (1.0 - p_w) * (1.0 - p_l);
        prop_assert!((s.acceptance_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn decisions_deterministic_and_seed_sensitive(
        seed in any::<u64>(),
        p in 0.05..0.95f64,
        requester in any::<u32>(),
    ) {
        let b = CompromisedBeacon::new(
            NodeId(1),
            Point2::new(10.0, 10.0),
            Vector2::new(300.0, 0.0),
            BeaconStrategy::with_acceptance(p),
            seed,
        );
        prop_assert_eq!(b.decide(NodeId(requester)), b.decide(NodeId(requester)));
    }

    #[test]
    fn empirical_acceptance_tracks_p(seed in any::<u64>(), p in 0.0..1.0f64) {
        let b = CompromisedBeacon::new(
            NodeId(1),
            Point2::ORIGIN,
            Vector2::new(300.0, 0.0),
            BeaconStrategy::with_acceptance(p),
            seed,
        );
        let n = 3000u32;
        let malicious = (0..n)
            .filter(|&r| b.decide(NodeId(r)) == Action::MaliciousSignal)
            .count();
        let rate = malicious as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.05, "P={p}, measured {rate}");
    }

    #[test]
    fn wormhole_tunneling_symmetric(
        ax in 0.0..1000.0f64, ay in 0.0..1000.0f64,
        bx in 0.0..1000.0f64, by in 0.0..1000.0f64,
        sx in 0.0..1000.0f64, sy in 0.0..1000.0f64,
        dx in 0.0..1000.0f64, dy in 0.0..1000.0f64,
        range in 50.0..300.0f64,
    ) {
        let w = Wormhole::new(Point2::new(ax, ay), Point2::new(bx, by), Cycles::ZERO);
        let s = Point2::new(sx, sy);
        let d = Point2::new(dx, dy);
        // The tunnel is symmetric except when a node sits in capture range
        // of BOTH ends (exit_for then picks one end deterministically).
        let near_both = |p: Point2| {
            p.distance(w.end_a()) <= range && p.distance(w.end_b()) <= range
        };
        if !near_both(s) && !near_both(d) {
            prop_assert_eq!(w.tunnels(s, d, range), w.tunnels(d, s, range));
        }
        // Tunneling implies the source is captured by some end.
        if w.tunnels(s, d, range) {
            prop_assert!(w.exit_for(s, range).is_some());
        }
    }

    #[test]
    fn collusion_alert_stream_respects_budgets(
        tau in 0u32..6,
        tau_prime in 0u32..6,
        n_colluders in 1usize..16,
        n_victims in 1usize..128,
    ) {
        let policy = CollusionPolicy::new(tau, tau_prime);
        let colluders: Vec<NodeId> = (0..n_colluders as u32).map(NodeId).collect();
        let victims: Vec<NodeId> = (1000..1000 + n_victims as u32).map(NodeId).collect();
        let alerts = policy.alerts(&colluders, &victims);
        // Budget per reporter.
        for c in &colluders {
            let used = alerts.iter().filter(|(r, _)| r == c).count();
            prop_assert!(used <= policy.budget_per_reporter() as usize);
        }
        // Nobody accuses a colluder, nobody self-accuses.
        for (r, t) in &alerts {
            prop_assert!(colluders.contains(r));
            prop_assert!(victims.contains(t));
            prop_assert!(r != t);
        }
        // Fully-hit victims never exceed the expected revocation bound.
        let fully = victims
            .iter()
            .filter(|v| {
                alerts.iter().filter(|(_, t)| t == *v).count()
                    >= policy.cost_per_revocation() as usize
            })
            .count();
        prop_assert!(fully <= policy.expected_revocations(n_colluders));
    }
}
