//! Wormhole attacks (§2.2.1).

use secloc_geometry::Point2;
use secloc_radio::Cycles;

/// A wormhole: two radio taps connected by a low-latency link.
///
/// "An attacker tunnels packets received in one part of the network over a
/// low latency link and replays them in a different part." The simulation's
/// canonical instance runs between `(100, 100)` and `(800, 700)` — the
/// reconstructed Figure-11 anchors — and "forwards every message received
/// at one side immediately to the other side" (§4).
///
/// # Examples
///
/// ```
/// use secloc_attack::Wormhole;
/// use secloc_geometry::Point2;
///
/// let w = Wormhole::paper_default();
/// let near_a = Point2::new(110.0, 95.0);
/// let near_b = Point2::new(810.0, 690.0);
/// assert!(w.tunnels(near_a, near_b, 50.0));
/// assert!(!w.tunnels(near_a, Point2::new(500.0, 500.0), 50.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wormhole {
    end_a: Point2,
    end_b: Point2,
    extra_delay: Cycles,
}

impl Wormhole {
    /// Creates a wormhole between two tap points with a tunnel latency of
    /// `extra_delay` (zero models the paper's "immediately").
    pub fn new(end_a: Point2, end_b: Point2, extra_delay: Cycles) -> Self {
        Wormhole {
            end_a,
            end_b,
            extra_delay,
        }
    }

    /// The simulation wormhole of §4: `(100,100) ↔ (800,700)`, immediate
    /// forwarding.
    pub fn paper_default() -> Self {
        Wormhole::new(
            Point2::new(100.0, 100.0),
            Point2::new(800.0, 700.0),
            Cycles::ZERO,
        )
    }

    /// First tap point.
    pub fn end_a(&self) -> Point2 {
        self.end_a
    }

    /// Second tap point.
    pub fn end_b(&self) -> Point2 {
        self.end_b
    }

    /// Tunnel latency added on top of normal radio delays.
    pub fn extra_delay(&self) -> Cycles {
        self.extra_delay
    }

    /// If a transmitter at `src` is heard by a tap (within `capture_range`),
    /// returns the opposite end where the signal re-enters the air.
    pub fn exit_for(&self, src: Point2, capture_range: f64) -> Option<Point2> {
        if src.distance(self.end_a) <= capture_range {
            Some(self.end_b)
        } else if src.distance(self.end_b) <= capture_range {
            Some(self.end_a)
        } else {
            None
        }
    }

    /// Whether a packet sent at `src` would be replayed within radio range
    /// of a receiver at `dst` (both ends taken into account).
    pub fn tunnels(&self, src: Point2, dst: Point2, range: f64) -> bool {
        self.exit_for(src, range)
            .is_some_and(|exit| exit.distance(dst) <= range)
    }

    /// The distance the tunnel spans — how far apart the victims believe
    /// each other to be. A wormhole is only *useful* to an attacker when
    /// this exceeds the radio range (otherwise the endpoints are genuine
    /// neighbours), which is the premise of the geographic pre-check in
    /// the paper's filtering algorithm.
    pub fn span(&self) -> f64 {
        self.end_a.distance(self.end_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_span_exceeds_range() {
        let w = Wormhole::paper_default();
        // (100,100) -> (800,700): sqrt(700^2 + 600^2) ~= 921.95 ft >> 150 ft.
        assert!((w.span() - 921.954).abs() < 0.01);
        assert!(w.span() > 150.0);
        assert_eq!(w.extra_delay(), Cycles::ZERO);
    }

    #[test]
    fn exit_is_opposite_end() {
        let w = Wormhole::paper_default();
        assert_eq!(
            w.exit_for(Point2::new(100.0, 100.0), 10.0),
            Some(Point2::new(800.0, 700.0))
        );
        assert_eq!(
            w.exit_for(Point2::new(800.0, 700.0), 10.0),
            Some(Point2::new(100.0, 100.0))
        );
        assert_eq!(w.exit_for(Point2::new(450.0, 450.0), 10.0), None);
    }

    #[test]
    fn tunnels_requires_both_ends_in_range() {
        let w = Wormhole::paper_default();
        let near_a = Point2::new(130.0, 100.0);
        let near_b = Point2::new(830.0, 700.0);
        let far = Point2::new(400.0, 400.0);
        assert!(w.tunnels(near_a, near_b, 150.0));
        assert!(w.tunnels(near_b, near_a, 150.0));
        assert!(!w.tunnels(near_a, far, 150.0));
        assert!(!w.tunnels(far, near_b, 150.0));
    }

    #[test]
    fn capture_range_boundary_inclusive() {
        let w = Wormhole::new(Point2::ORIGIN, Point2::new(1000.0, 0.0), Cycles::ZERO);
        assert!(w.exit_for(Point2::new(50.0, 0.0), 50.0).is_some());
        assert!(w.exit_for(Point2::new(50.1, 0.0), 50.0).is_none());
    }

    #[test]
    fn custom_delay_carried() {
        let w = Wormhole::new(Point2::ORIGIN, Point2::new(10.0, 0.0), Cycles::new(500));
        assert_eq!(w.extra_delay(), Cycles::new(500));
    }
}
