//! Masquerading external attackers (Fig. 1a).

use secloc_crypto::{Key, NodeId};
use secloc_geometry::Point2;
use secloc_radio::{BeaconPayload, Frame, FrameBody};

/// An external attacker pretending to be a beacon node without holding any
/// valid key material.
///
/// It fabricates beacon frames under a guessed key. Since "every beacon
/// packet is authenticated ... with the pairwise key shared between two
/// communicating nodes", these forgeries fail MAC verification at every
/// honest receiver — the paper's justification for focusing on *insider*
/// (compromised-beacon) attacks. Kept as an executable baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Masquerader {
    claimed_id: NodeId,
    declared_position: Point2,
    guessed_key: Key,
}

impl Masquerader {
    /// Creates a masquerader claiming to be beacon `claimed_id` located at
    /// `declared_position`, signing with `guessed_key` (which, lacking a
    /// compromise, differs from every real pairwise key).
    pub fn new(claimed_id: NodeId, declared_position: Point2, guessed_key: Key) -> Self {
        Masquerader {
            claimed_id,
            declared_position,
            guessed_key,
        }
    }

    /// The beacon identity being impersonated.
    pub fn claimed_id(&self) -> NodeId {
        self.claimed_id
    }

    /// Fabricates a beacon frame addressed to `victim`.
    pub fn forge_beacon(&self, victim: NodeId) -> Frame {
        Frame::seal(
            self.claimed_id,
            victim,
            FrameBody::Beacon(BeaconPayload {
                beacon: self.claimed_id,
                declared: self.declared_position,
            }),
            &self.guessed_key,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_crypto::PairwiseKeyStore;

    #[test]
    fn forgery_rejected_by_honest_receiver() {
        let store = PairwiseKeyStore::new(Key::from_u128(1234));
        let attacker = Masquerader::new(
            NodeId(3),
            Point2::new(10.0, 10.0),
            Key::from_u128(0xbad), // not the real pairwise key
        );
        let victim = NodeId(40);
        let frame = attacker.forge_beacon(victim);
        let real_key = store.pairwise(NodeId(3), victim);
        assert!(frame.open(victim, &real_key).is_err(), "forgery accepted!");
    }

    #[test]
    fn forgery_with_stolen_key_succeeds() {
        // Sanity check of the threat model: only *key compromise* defeats
        // MAC filtering, which is why the paper's detector exists at all.
        let store = PairwiseKeyStore::new(Key::from_u128(1234));
        let victim = NodeId(40);
        let stolen = store.pairwise(NodeId(3), victim);
        let attacker = Masquerader::new(NodeId(3), Point2::new(10.0, 10.0), stolen);
        let frame = attacker.forge_beacon(victim);
        assert!(frame.open(victim, &stolen).is_ok());
    }

    #[test]
    fn frame_carries_claimed_identity() {
        let attacker = Masquerader::new(NodeId(9), Point2::ORIGIN, Key::from_u128(7));
        let frame = attacker.forge_beacon(NodeId(1));
        assert_eq!(frame.src(), NodeId(9));
        assert_eq!(attacker.claimed_id(), NodeId(9));
        match frame.peek_body() {
            FrameBody::Beacon(b) => assert_eq!(b.beacon, NodeId(9)),
            other => panic!("unexpected body {other:?}"),
        }
    }
}
