//! Compromised beacon nodes and their evasion strategies.

use secloc_crypto::{prf, NodeId};
use secloc_geometry::{Point2, Vector2};

/// What a compromised beacon does for one particular requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Send a normal, correct beacon signal (no attack, no evidence).
    Normal,
    /// Send a malicious signal but manipulate it so the requester's
    /// wormhole detector believes it came through a wormhole — the
    /// requester then discards it (no alert, no acceptance).
    FakeWormhole,
    /// Send a malicious signal but delay it so the requester's RTT filter
    /// classifies it as locally replayed — again discarded.
    FakeLocalReplay,
    /// Send an undisguised malicious signal: accepted by non-beacon
    /// requesters (location poisoned), detected by detecting nodes.
    MaliciousSignal,
}

/// The per-requester behaviour mix of a compromised beacon (§2.3).
///
/// The paper parameterises the attacker by three fractions:
/// `p_n` of requesters get a normal signal, `p_w` of the rest are convinced
/// the signal is a wormhole replay, and `p_l` of what remains are convinced
/// it is a local replay. The probability a requester both *receives* a
/// malicious signal and *keeps* it is therefore
/// `P = (1 − p_n)(1 − p_w)(1 − p_l)` — the x-axis of Figs. 5–9, 12, 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconStrategy {
    p_normal: f64,
    p_fake_wormhole: f64,
    p_fake_local: f64,
}

impl BeaconStrategy {
    /// An always-honest strategy (for control experiments).
    pub fn honest() -> Self {
        BeaconStrategy {
            p_normal: 1.0,
            p_fake_wormhole: 0.0,
            p_fake_local: 0.0,
        }
    }

    /// An always-attacking, never-disguising strategy (`P = 1`).
    pub fn always_malicious() -> Self {
        BeaconStrategy {
            p_normal: 0.0,
            p_fake_wormhole: 0.0,
            p_fake_local: 0.0,
        }
    }

    /// The paper's probabilistic attacker with fractions
    /// `(p_n, p_w, p_l)`.
    ///
    /// # Panics
    ///
    /// Panics unless each fraction lies in `[0, 1]`.
    pub fn probabilistic(p_n: f64, p_w: f64, p_l: f64) -> Self {
        for (name, v) in [("p_n", p_n), ("p_w", p_w), ("p_l", p_l)] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        BeaconStrategy {
            p_normal: p_n,
            p_fake_wormhole: p_w,
            p_fake_local: p_l,
        }
    }

    /// A strategy achieving acceptance probability `p` by splitting the
    /// evasion evenly: `p_n = 1 − p`, `p_w = p_l = 0`. This is the
    /// simplest attacker with `P = p`; Figs. 12–14 are insensitive to how
    /// the evasion mass is split because the analysis only depends on `P`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    pub fn with_acceptance(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "P must be in [0,1], got {p}");
        BeaconStrategy::probabilistic(1.0 - p, 0.0, 0.0)
    }

    /// Fraction of requesters answered honestly.
    pub fn p_normal(&self) -> f64 {
        self.p_normal
    }

    /// Fraction of non-normal requesters shown a fake wormhole.
    pub fn p_fake_wormhole(&self) -> f64 {
        self.p_fake_wormhole
    }

    /// Fraction of remaining requesters shown a fake local replay.
    pub fn p_fake_local(&self) -> f64 {
        self.p_fake_local
    }

    /// The acceptance probability `P = (1−p_n)(1−p_w)(1−p_l)` — the chance
    /// a requester receives a malicious beacon signal that survives the
    /// replay filters.
    pub fn acceptance_probability(&self) -> f64 {
        (1.0 - self.p_normal) * (1.0 - self.p_fake_wormhole) * (1.0 - self.p_fake_local)
    }
}

/// A compromised beacon node: valid keys, false words.
///
/// `lie_offset` is the displacement between the beacon's true position and
/// the location it declares in malicious signals; the declared location is
/// `true_position + lie_offset`. The detector's consistency check fires
/// when the measured distance (to the true position) and the calculated
/// distance (to the declared one) disagree by more than the ranging error
/// bound, which for almost all requester positions happens whenever
/// `|lie_offset|` comfortably exceeds `2ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompromisedBeacon {
    id: NodeId,
    true_position: Point2,
    lie_offset: Vector2,
    strategy: BeaconStrategy,
    seed: u64,
}

impl CompromisedBeacon {
    /// Creates a compromised beacon.
    ///
    /// `seed` fixes the deterministic requester→action map so simulations
    /// are reproducible.
    pub fn new(
        id: NodeId,
        true_position: Point2,
        lie_offset: Vector2,
        strategy: BeaconStrategy,
        seed: u64,
    ) -> Self {
        CompromisedBeacon {
            id,
            true_position,
            lie_offset,
            strategy,
            seed,
        }
    }

    /// The beacon's network identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Where the node physically is.
    pub fn true_position(&self) -> Point2 {
        self.true_position
    }

    /// The location declared in malicious beacon packets.
    pub fn declared_position(&self) -> Point2 {
        self.true_position + self.lie_offset
    }

    /// The strategy in force.
    pub fn strategy(&self) -> BeaconStrategy {
        self.strategy
    }

    /// The action taken for `requester` — deterministic per requester
    /// (§2.3's best-evasion assumption), uniform across requesters in the
    /// strategy's proportions.
    pub fn decide(&self, requester: NodeId) -> Action {
        // Two independent uniform draws from a keyed PRF of the pair.
        let tag = prf::prf64((self.seed, self.id.0 as u64), &requester.0.to_le_bytes());
        let u1 = (tag >> 32) as f64 / u32::MAX as f64;
        let u2 = (tag & 0xffff_ffff) as f64 / u32::MAX as f64;
        let tag2 = prf::prf64(
            (self.seed ^ 0x5a5a_5a5a, self.id.0 as u64),
            &requester.0.to_le_bytes(),
        );
        let u3 = (tag2 >> 32) as f64 / u32::MAX as f64;

        if u1 < self.strategy.p_normal() {
            Action::Normal
        } else if u2 < self.strategy.p_fake_wormhole() {
            Action::FakeWormhole
        } else if u3 < self.strategy.p_fake_local() {
            Action::FakeLocalReplay
        } else {
            Action::MaliciousSignal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(strategy: BeaconStrategy) -> CompromisedBeacon {
        CompromisedBeacon::new(
            NodeId(7),
            Point2::new(100.0, 100.0),
            Vector2::new(300.0, -50.0),
            strategy,
            42,
        )
    }

    #[test]
    fn honest_strategy_always_normal() {
        let b = beacon(BeaconStrategy::honest());
        for r in 0..200 {
            assert_eq!(b.decide(NodeId(r)), Action::Normal);
        }
    }

    #[test]
    fn always_malicious_never_hides() {
        let b = beacon(BeaconStrategy::always_malicious());
        for r in 0..200 {
            assert_eq!(b.decide(NodeId(r)), Action::MaliciousSignal);
        }
    }

    #[test]
    fn decisions_deterministic_per_requester() {
        let b = beacon(BeaconStrategy::probabilistic(0.3, 0.3, 0.3));
        for r in 0..100 {
            assert_eq!(b.decide(NodeId(r)), b.decide(NodeId(r)));
        }
    }

    #[test]
    fn different_seeds_give_different_maps() {
        let s = BeaconStrategy::probabilistic(0.5, 0.0, 0.0);
        let b1 = CompromisedBeacon::new(NodeId(7), Point2::ORIGIN, Vector2::ZERO, s, 1);
        let b2 = CompromisedBeacon::new(NodeId(7), Point2::ORIGIN, Vector2::ZERO, s, 2);
        let diff = (0..500)
            .filter(|&r| b1.decide(NodeId(r)) != b2.decide(NodeId(r)))
            .count();
        assert!(diff > 100, "maps identical across seeds: {diff} differ");
    }

    #[test]
    fn empirical_fractions_match_strategy() {
        let s = BeaconStrategy::probabilistic(0.4, 0.25, 0.5);
        let b = beacon(s);
        let n = 20_000u32;
        let mut counts = [0usize; 4];
        for r in 0..n {
            let i = match b.decide(NodeId(r)) {
                Action::Normal => 0,
                Action::FakeWormhole => 1,
                Action::FakeLocalReplay => 2,
                Action::MaliciousSignal => 3,
            };
            counts[i] += 1;
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.4).abs() < 0.02, "normal {}", f(counts[0]));
        assert!(
            (f(counts[1]) - 0.6 * 0.25).abs() < 0.02,
            "wormhole {}",
            f(counts[1])
        );
        assert!(
            (f(counts[2]) - 0.6 * 0.75 * 0.5).abs() < 0.02,
            "local {}",
            f(counts[2])
        );
        let p = s.acceptance_probability();
        assert!(
            (f(counts[3]) - p).abs() < 0.02,
            "malicious {} vs P {p}",
            f(counts[3])
        );
    }

    #[test]
    fn acceptance_probability_formula() {
        let s = BeaconStrategy::probabilistic(0.2, 0.3, 0.4);
        assert!((s.acceptance_probability() - 0.8 * 0.7 * 0.6).abs() < 1e-12);
        assert_eq!(BeaconStrategy::honest().acceptance_probability(), 0.0);
        assert_eq!(
            BeaconStrategy::always_malicious().acceptance_probability(),
            1.0
        );
        let w = BeaconStrategy::with_acceptance(0.35);
        assert!((w.acceptance_probability() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn declared_position_applies_offset() {
        let b = beacon(BeaconStrategy::always_malicious());
        assert_eq!(b.declared_position(), Point2::new(400.0, 50.0));
        assert_eq!(b.true_position(), Point2::new(100.0, 100.0));
        assert_eq!(b.id(), NodeId(7));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_fraction_rejected() {
        BeaconStrategy::probabilistic(1.5, 0.0, 0.0);
    }
}
