//! Colluding alert-spam against the revocation scheme (§3.2, §4).

use secloc_crypto::NodeId;

/// The strategy colluding malicious beacons use against the base station:
/// each reporter's accepted alerts are capped at `τ + 1` (the report
/// counter must not have *exceeded* `τ` when an alert arrives), and the
/// station counts only **distinct** accusers toward τ′ — repeats of an
/// accepted `(reporter, target)` accusation are discarded. The best the
/// colluders can do is therefore gang up: every victim is accused by a
/// quorum of `τ′ + 1` *different* colluders, one budget unit each.
///
/// "They can always make the base station revoke about
/// `N_a (τ+1) / (τ′+1)` benign beacon nodes by simply reporting alerts"
/// (§4) — the quorum strategy achieves exactly that bound whenever
/// `N_a ≥ τ′ + 1`; fewer colluders than a quorum revoke nobody.
/// [`CollusionPolicy::expected_revocations`] is that bound;
/// [`CollusionPolicy::alerts`] emits the concrete alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollusionPolicy {
    /// The base station's per-reporter cap τ.
    pub tau: u32,
    /// The base station's revocation threshold τ′.
    pub tau_prime: u32,
}

impl CollusionPolicy {
    /// Creates a policy tuned against thresholds `(τ, τ′)`.
    pub fn new(tau: u32, tau_prime: u32) -> Self {
        CollusionPolicy { tau, tau_prime }
    }

    /// Alerts each malicious beacon can have accepted: `τ + 1`.
    pub fn budget_per_reporter(&self) -> u32 {
        self.tau + 1
    }

    /// Alerts needed to revoke one victim: `τ′ + 1`.
    pub fn cost_per_revocation(&self) -> u32 {
        self.tau_prime + 1
    }

    /// The paper's bound on benign beacons revoked through collusion —
    /// zero when the gang cannot field a full `τ′ + 1` quorum of distinct
    /// accusers.
    pub fn expected_revocations(&self, num_malicious: usize) -> usize {
        if num_malicious < self.cost_per_revocation() as usize {
            return 0;
        }
        (num_malicious * self.budget_per_reporter() as usize) / self.cost_per_revocation() as usize
    }

    /// Generates the colluders' alert stream: `(reporter, target)` pairs,
    /// concentrating fire so victims fall one after another. For each
    /// victim (taken in the order given) the `τ′ + 1` colluders with the
    /// most remaining budget accuse it once each — distinct accusers, as
    /// the base station requires; drawing from the largest budgets keeps
    /// them balanced, which is what achieves the `N_a (τ+1) / (τ′+1)`
    /// bound. The stream ends when no full quorum has budget left.
    /// Malicious beacons never accuse each other ("since this will
    /// increase the probability of a malicious beacon node being
    /// detected", §3.2).
    pub fn alerts(&self, colluders: &[NodeId], victims: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let quorum = self.cost_per_revocation() as usize;
        let mut out = Vec::new();
        if colluders.len() < quorum {
            return out;
        }
        let mut budget = vec![self.budget_per_reporter(); colluders.len()];
        for &victim in victims {
            let mut with_budget: Vec<usize> =
                (0..colluders.len()).filter(|&i| budget[i] > 0).collect();
            if with_budget.len() < quorum {
                break;
            }
            // Stable sort: ties resolve in colluder-list order, keeping
            // the stream fully deterministic.
            with_budget.sort_by(|&a, &b| budget[b].cmp(&budget[a]));
            for &i in with_budget.iter().take(quorum) {
                out.push((colluders[i], victim));
                budget[i] -= 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn budgets_and_costs() {
        let p = CollusionPolicy::new(2, 2);
        assert_eq!(p.budget_per_reporter(), 3);
        assert_eq!(p.cost_per_revocation(), 3);
        assert_eq!(p.expected_revocations(10), 10);
    }

    #[test]
    fn paper_bound_examples() {
        // tau=2, tau'=4: 10 colluders * 3 alerts / 5 per kill = 6 victims.
        assert_eq!(CollusionPolicy::new(2, 4).expected_revocations(10), 6);
        assert_eq!(CollusionPolicy::new(3, 2).expected_revocations(5), 6);
    }

    #[test]
    fn alert_stream_respects_budget() {
        let p = CollusionPolicy::new(2, 2);
        let colluders = ids(0..4);
        let victims = ids(100..200);
        let alerts = p.alerts(&colluders, &victims);
        for c in &colluders {
            let reported = alerts.iter().filter(|(r, _)| r == c).count();
            assert!(reported <= p.budget_per_reporter() as usize);
        }
    }

    #[test]
    fn alert_stream_concentrates_fire() {
        let p = CollusionPolicy::new(2, 2);
        let colluders = ids(0..4);
        let victims = ids(100..200);
        let alerts = p.alerts(&colluders, &victims);
        // First victim gets exactly cost_per_revocation alerts before any
        // later victim is touched.
        let first: Vec<_> = alerts.iter().take(3).map(|(_, t)| *t).collect();
        assert_eq!(first, vec![NodeId(100); 3]);
        // Expected revocation count achieved: 4*3/3 = 4 victims fully hit.
        let fully_hit = (100..200)
            .filter(|&v| alerts.iter().filter(|(_, t)| *t == NodeId(v)).count() >= 3)
            .count();
        assert_eq!(fully_hit, p.expected_revocations(4));
    }

    #[test]
    fn colluders_never_accuse_each_other() {
        let p = CollusionPolicy::new(2, 3);
        let colluders = ids(0..5);
        let victims = ids(50..60);
        for (r, t) in p.alerts(&colluders, &victims) {
            assert!(colluders.contains(&r));
            assert!(victims.contains(&t));
            assert!(!colluders.contains(&t));
        }
    }

    #[test]
    fn no_victims_no_alerts() {
        let p = CollusionPolicy::new(2, 2);
        assert!(p.alerts(&ids(0..3), &[]).is_empty());
    }

    #[test]
    fn each_victim_gets_distinct_accusers() {
        let p = CollusionPolicy::new(2, 2);
        let alerts = p.alerts(&ids(0..5), &ids(100..200));
        for v in 100..200u32 {
            let accusers: Vec<NodeId> = alerts
                .iter()
                .filter(|(_, t)| *t == NodeId(v))
                .map(|(r, _)| *r)
                .collect();
            let mut unique = accusers.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(
                accusers.len(),
                unique.len(),
                "victim {v} accused twice by one colluder"
            );
            assert!(
                accusers.is_empty() || accusers.len() == 3,
                "partial quorum on {v}"
            );
        }
    }

    #[test]
    fn below_quorum_gang_stays_silent() {
        // Two colluders cannot field a tau'+1 = 3 quorum: the distinct-
        // accuser base station would never revoke, so spending budget only
        // raises their own profile.
        let p = CollusionPolicy::new(2, 2);
        assert!(p.alerts(&ids(0..2), &ids(100..110)).is_empty());
        assert_eq!(p.expected_revocations(2), 0);
        assert_eq!(p.expected_revocations(3), 3);
    }

    #[test]
    fn fewer_victims_than_budget_stops_early() {
        let p = CollusionPolicy::new(10, 0); // budget 11 each, 1 alert kills
        let alerts = p.alerts(&ids(0..2), &ids(100..103));
        // Only 3 victims exist; stream stops once all are dispatched.
        assert_eq!(alerts.len(), 3);
    }
}
