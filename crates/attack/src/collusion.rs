//! Colluding alert-spam against the revocation scheme (§3.2, §4).

use secloc_crypto::NodeId;

/// The strategy colluding malicious beacons use against the base station:
/// since each reporter's accepted alerts are capped at `τ + 1` (the report
/// counter must not have *exceeded* `τ` when an alert arrives), the best
/// they can do is spend the whole budget on benign victims, concentrated so
/// every `τ′ + 1` alerts revoke one victim.
///
/// "They can always make the base station revoke about
/// `N_a (τ+1) / (τ′+1)` benign beacon nodes by simply reporting alerts"
/// (§4). [`CollusionPolicy::expected_revocations`] is that bound;
/// [`CollusionPolicy::alerts`] emits the concrete alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollusionPolicy {
    /// The base station's per-reporter cap τ.
    pub tau: u32,
    /// The base station's revocation threshold τ′.
    pub tau_prime: u32,
}

impl CollusionPolicy {
    /// Creates a policy tuned against thresholds `(τ, τ′)`.
    pub fn new(tau: u32, tau_prime: u32) -> Self {
        CollusionPolicy { tau, tau_prime }
    }

    /// Alerts each malicious beacon can have accepted: `τ + 1`.
    pub fn budget_per_reporter(&self) -> u32 {
        self.tau + 1
    }

    /// Alerts needed to revoke one victim: `τ′ + 1`.
    pub fn cost_per_revocation(&self) -> u32 {
        self.tau_prime + 1
    }

    /// The paper's bound on benign beacons revoked through collusion.
    pub fn expected_revocations(&self, num_malicious: usize) -> usize {
        (num_malicious * self.budget_per_reporter() as usize) / self.cost_per_revocation() as usize
    }

    /// Generates the colluders' alert stream: `(reporter, target)` pairs,
    /// concentrating fire so victims fall one after another. Victims are
    /// taken in the order given; malicious beacons never accuse each other
    /// ("since this will increase the probability of a malicious beacon
    /// node being detected", §3.2).
    pub fn alerts(&self, colluders: &[NodeId], victims: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        if victims.is_empty() {
            return out;
        }
        let mut victim_iter = 0usize;
        let mut shots_on_current = 0u32;
        'outer: for &c in colluders {
            for _ in 0..self.budget_per_reporter() {
                if victim_iter >= victims.len() {
                    break 'outer;
                }
                out.push((c, victims[victim_iter]));
                shots_on_current += 1;
                if shots_on_current >= self.cost_per_revocation() {
                    shots_on_current = 0;
                    victim_iter += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn budgets_and_costs() {
        let p = CollusionPolicy::new(2, 2);
        assert_eq!(p.budget_per_reporter(), 3);
        assert_eq!(p.cost_per_revocation(), 3);
        assert_eq!(p.expected_revocations(10), 10);
    }

    #[test]
    fn paper_bound_examples() {
        // tau=2, tau'=4: 10 colluders * 3 alerts / 5 per kill = 6 victims.
        assert_eq!(CollusionPolicy::new(2, 4).expected_revocations(10), 6);
        assert_eq!(CollusionPolicy::new(3, 2).expected_revocations(5), 6);
    }

    #[test]
    fn alert_stream_respects_budget() {
        let p = CollusionPolicy::new(2, 2);
        let colluders = ids(0..4);
        let victims = ids(100..200);
        let alerts = p.alerts(&colluders, &victims);
        for c in &colluders {
            let reported = alerts.iter().filter(|(r, _)| r == c).count();
            assert!(reported <= p.budget_per_reporter() as usize);
        }
    }

    #[test]
    fn alert_stream_concentrates_fire() {
        let p = CollusionPolicy::new(2, 2);
        let colluders = ids(0..4);
        let victims = ids(100..200);
        let alerts = p.alerts(&colluders, &victims);
        // First victim gets exactly cost_per_revocation alerts before any
        // later victim is touched.
        let first: Vec<_> = alerts.iter().take(3).map(|(_, t)| *t).collect();
        assert_eq!(first, vec![NodeId(100); 3]);
        // Expected revocation count achieved: 4*3/3 = 4 victims fully hit.
        let fully_hit = (100..200)
            .filter(|&v| alerts.iter().filter(|(_, t)| *t == NodeId(v)).count() >= 3)
            .count();
        assert_eq!(fully_hit, p.expected_revocations(4));
    }

    #[test]
    fn colluders_never_accuse_each_other() {
        let p = CollusionPolicy::new(2, 3);
        let colluders = ids(0..5);
        let victims = ids(50..60);
        for (r, t) in p.alerts(&colluders, &victims) {
            assert!(colluders.contains(&r));
            assert!(victims.contains(&t));
            assert!(!colluders.contains(&t));
        }
    }

    #[test]
    fn no_victims_no_alerts() {
        let p = CollusionPolicy::new(2, 2);
        assert!(p.alerts(&ids(0..3), &[]).is_empty());
    }

    #[test]
    fn fewer_victims_than_budget_stops_early() {
        let p = CollusionPolicy::new(10, 0); // budget 11 each, 1 alert kills
        let alerts = p.alerts(&ids(0..2), &ids(100..103));
        // Only 3 victims exist; stream stops once all are dispatched.
        assert_eq!(alerts.len(), 3);
    }
}
