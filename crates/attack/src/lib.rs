//! Attacker models against beacon-based location discovery.
//!
//! Figure 1 of the reproduced paper names three attack families, all built
//! here, plus the adaptive evasion and collusion behaviours its analysis
//! assumes:
//!
//! - [`Masquerader`] — an external attacker without keys forging beacon
//!   packets (defeated by MAC filtering; kept as a baseline);
//! - [`CompromisedBeacon`] — an insider beacon with valid keys following a
//!   [`BeaconStrategy`]: it may answer honestly, send a malicious signal, or
//!   disguise its malice as a wormhole/local replay. Decisions are a
//!   deterministic function of the requester ID, because "the malicious
//!   beacon node behaves in the same way for the same requesting node, which
//!   is the best strategy for the node to avoid being detected" (§2.3);
//! - [`Wormhole`] — a low-latency tunnel replaying benign signals between
//!   two far-apart field locations (§2.2.1);
//! - [`LocalReplayer`] — a store-and-forward replayer of a neighbour's
//!   signal, paying at least one whole packet time of delay (§2.2.2);
//! - [`CollusionPolicy`] — malicious beacons spending their full report
//!   budget on alerts against benign beacons (§3.2, §4).
//!
//! # Examples
//!
//! ```
//! use secloc_attack::{BeaconStrategy, CompromisedBeacon, Action};
//! use secloc_crypto::NodeId;
//! use secloc_geometry::{Point2, Vector2};
//!
//! let strategy = BeaconStrategy::probabilistic(0.2, 0.3, 0.3);
//! let beacon = CompromisedBeacon::new(
//!     NodeId(4),
//!     Point2::new(100.0, 100.0),
//!     Vector2::new(250.0, 0.0),
//!     strategy,
//!     99, // seed
//! );
//! let action = beacon.decide(NodeId(500));
//! // Same requester, same decision — the paper's best-evasion assumption.
//! assert_eq!(action, beacon.decide(NodeId(500)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beacon;
mod collusion;
mod masquerade;
mod replayer;
mod wormhole;

pub use beacon::{Action, BeaconStrategy, CompromisedBeacon};
pub use collusion::CollusionPolicy;
pub use masquerade::Masquerader;
pub use replayer::LocalReplayer;
pub use wormhole::Wormhole;
