//! Local replay attacks (§2.2.2).

use secloc_geometry::Point2;
use secloc_radio::{Cycles, Frame};

/// An attacking node that replays a neighbour beacon's signal locally.
///
/// The paper's §2.3 collision assumption makes the physics explicit: while
/// a node is transmitting during period `T`, a neighbour "either receives
/// the original signal or receives nothing", so a replayer must receive the
/// *whole* packet before retransmitting it. The minimum replay delay is
/// therefore one full packet transmission time — "typically much larger
/// than 4.5 bits" — plus whatever turnaround the attacker's hardware adds.
///
/// # Examples
///
/// ```
/// use secloc_attack::LocalReplayer;
/// use secloc_crypto::{Key, NodeId};
/// use secloc_geometry::Point2;
/// use secloc_radio::{BeaconPayload, Cycles, Frame, FrameBody};
///
/// let attacker = LocalReplayer::new(Point2::new(50.0, 50.0), Cycles::new(200));
/// let frame = Frame::seal(
///     NodeId(1),
///     NodeId(2),
///     FrameBody::Beacon(BeaconPayload { beacon: NodeId(1), declared: Point2::new(0.0, 0.0) }),
///     &Key::from_u128(1),
/// );
/// // The replay arrives at least one packet-time late: far beyond the
/// // 4.5-bit RTT margin, so the RTT filter catches it.
/// assert!(attacker.replay_delay(&frame).as_bits() > 4.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalReplayer {
    position: Point2,
    turnaround: Cycles,
}

impl LocalReplayer {
    /// Creates a replayer at `position` whose hardware needs `turnaround`
    /// cycles between finishing reception and starting retransmission.
    pub fn new(position: Point2, turnaround: Cycles) -> Self {
        LocalReplayer {
            position,
            turnaround,
        }
    }

    /// Where the attacker physically sits.
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// The delay this attacker adds when replaying `frame`: one full
    /// store-and-forward packet time plus hardware turnaround.
    pub fn replay_delay(&self, frame: &Frame) -> Cycles {
        frame.transmission_time() + self.turnaround
    }

    /// Whether this attacker can overhear a transmission from `src` and
    /// reach a victim at `dst`, given radio `range`.
    pub fn in_position(&self, src: Point2, dst: Point2, range: f64) -> bool {
        self.position.distance(src) <= range && self.position.distance(dst) <= range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_crypto::{Key, NodeId};
    use secloc_radio::{BeaconPayload, FrameBody};

    fn beacon_frame() -> Frame {
        Frame::seal(
            NodeId(1),
            NodeId(2),
            FrameBody::Beacon(BeaconPayload {
                beacon: NodeId(1),
                declared: Point2::new(5.0, 5.0),
            }),
            &Key::from_u128(3),
        )
    }

    #[test]
    fn replay_delay_is_at_least_one_packet() {
        let r = LocalReplayer::new(Point2::ORIGIN, Cycles::ZERO);
        let f = beacon_frame();
        assert_eq!(r.replay_delay(&f), f.transmission_time());
        // 45-byte frame = 360 bits >> 4.5-bit margin.
        assert!(r.replay_delay(&f).as_bits() >= 360.0);
    }

    #[test]
    fn turnaround_adds_on_top() {
        let r = LocalReplayer::new(Point2::ORIGIN, Cycles::new(777));
        let f = beacon_frame();
        assert_eq!(r.replay_delay(&f), f.transmission_time() + Cycles::new(777));
    }

    #[test]
    fn positioning_check() {
        let r = LocalReplayer::new(Point2::new(50.0, 0.0), Cycles::ZERO);
        let src = Point2::new(0.0, 0.0);
        let dst = Point2::new(100.0, 0.0);
        assert!(r.in_position(src, dst, 60.0));
        assert!(!r.in_position(src, dst, 40.0));
        assert_eq!(r.position(), Point2::new(50.0, 0.0));
    }
}
