//! DV-hop range-free localization (Niculescu & Nath's APS — the paper's
//! ref \[23\]).
//!
//! When nodes cannot measure distances at all, they can still count hops:
//! each anchor floods the network; nodes record their minimum hop count to
//! every anchor; anchors derive an *average hop size* from their true
//! pairwise distances and hop counts; unknowns convert hop counts into
//! distance estimates and multilaterate.
//!
//! Included as the representative range-free baseline from the paper's
//! related work — the detection suite protects range-free schemes too,
//! since a compromised anchor lies in exactly the same ways (false
//! declared location, manipulated hop/flood behaviour).

use crate::{Estimate, EstimateError, Estimator, LocationReference, MmseEstimator};
use secloc_geometry::Point2;
use std::collections::VecDeque;

/// DV-hop over a static connectivity graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvHop {
    /// Radio range defining graph edges, in feet.
    pub range_ft: f64,
    /// Multilateration backend.
    pub estimator: MmseEstimator,
}

impl DvHop {
    /// Creates a DV-hop instance for radio range `range_ft`.
    ///
    /// # Panics
    ///
    /// Panics unless the range is finite and positive.
    pub fn new(range_ft: f64) -> Self {
        assert!(
            range_ft.is_finite() && range_ft > 0.0,
            "range must be positive, got {range_ft}"
        );
        DvHop {
            range_ft,
            estimator: MmseEstimator::default(),
        }
    }

    /// Runs the full scheme with honest anchors.
    ///
    /// `anchors` know their positions; `unknowns` are the true positions of
    /// the other nodes (used only for connectivity). Returns one estimate
    /// per unknown; `None` for nodes that cannot reach three anchors.
    pub fn localize(&self, anchors: &[Point2], unknowns: &[Point2]) -> Vec<Option<Estimate>> {
        self.localize_with_declared(anchors, anchors, unknowns)
    }

    /// Runs the scheme with possibly lying anchors: radio connectivity is
    /// governed by `anchors_true` (physics), while hop sizes and references
    /// are computed from `anchors_declared` (what the floods carry) — the
    /// separation a compromised anchor exploits.
    ///
    /// # Panics
    ///
    /// Panics if the two anchor slices differ in length.
    pub fn localize_with_declared(
        &self,
        anchors_true: &[Point2],
        anchors_declared: &[Point2],
        unknowns: &[Point2],
    ) -> Vec<Option<Estimate>> {
        assert_eq!(
            anchors_true.len(),
            anchors_declared.len(),
            "true/declared anchor lists must align"
        );
        let anchors = anchors_declared;
        let n_anchors = anchors.len();
        let all: Vec<Point2> = anchors_true
            .iter()
            .chain(unknowns.iter())
            .copied()
            .collect();
        let n = all.len();

        // Adjacency by range (O(n^2); fine at simulation scale).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in i + 1..n {
                if all[i].distance(all[j]) <= self.range_ft {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }

        // BFS hop counts from every anchor.
        let mut hops: Vec<Vec<Option<u32>>> = vec![vec![None; n]; n_anchors];
        for (a, hop_row) in hops.iter_mut().enumerate() {
            let mut queue = VecDeque::from([a]);
            hop_row[a] = Some(0);
            while let Some(u) = queue.pop_front() {
                let d = hop_row[u].expect("visited");
                for &v in &adj[u] {
                    if hop_row[v].is_none() {
                        hop_row[v] = Some(d + 1);
                        queue.push_back(v);
                    }
                }
            }
        }

        // Per-anchor average hop size from true anchor-anchor distances.
        let mut hop_size = vec![None::<f64>; n_anchors];
        for a in 0..n_anchors {
            let mut dist_sum = 0.0;
            let mut hop_sum = 0u32;
            for b in 0..n_anchors {
                if a == b {
                    continue;
                }
                if let Some(h) = hops[a][b] {
                    dist_sum += anchors[a].distance(anchors[b]);
                    hop_sum += h;
                }
            }
            if hop_sum > 0 {
                hop_size[a] = Some(dist_sum / hop_sum as f64);
            }
        }

        // Each unknown adopts the hop size of its nearest (fewest-hop)
        // anchor — the APS correction-flooding rule.
        unknowns
            .iter()
            .enumerate()
            .map(|(u, _)| {
                let node = n_anchors + u;
                let nearest = (0..n_anchors)
                    .filter_map(|a| Some((a, hops[a][node]?)))
                    .min_by_key(|&(_, h)| h)?;
                let size = hop_size[nearest.0]?;
                let refs: Vec<LocationReference> = (0..n_anchors)
                    .filter_map(|a| {
                        let h = hops[a][node]?;
                        Some(LocationReference::new(anchors[a], h as f64 * size))
                    })
                    .collect();
                self.estimator.estimate(&refs).ok()
            })
            .collect()
    }

    /// Convenience: mean localization error over the localized unknowns.
    pub fn mean_error(&self, anchors: &[Point2], unknowns: &[Point2]) -> Option<f64> {
        let estimates = self.localize(anchors, unknowns);
        let mut sum = 0.0;
        let mut k = 0usize;
        for (est, truth) in estimates.iter().zip(unknowns) {
            if let Some(e) = est {
                sum += e.position.distance(*truth);
                k += 1;
            }
        }
        (k > 0).then(|| sum / k as f64)
    }
}

impl Estimator for DvHop {
    /// DV-hop as a reference-consuming estimator is meaningless (it builds
    /// its own references); this impl multilaterates directly so `DvHop`
    /// can slot into estimator-generic code once hop-derived references
    /// exist.
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        self.estimator.estimate(refs)
    }

    fn min_references(&self) -> usize {
        self.estimator.min_references()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_geometry::{deploy, Field};

    /// Dense uniform network: DV-hop should localize everyone with error
    /// well under the radio range.
    #[test]
    fn dense_network_localizes_everyone() {
        let field = Field::square(500.0);
        let anchors = vec![
            Point2::new(20.0, 20.0),
            Point2::new(480.0, 30.0),
            Point2::new(30.0, 470.0),
            Point2::new(470.0, 480.0),
            Point2::new(250.0, 250.0),
        ];
        let unknowns = deploy::uniform(&field, 150, 3);
        let dv = DvHop::new(120.0);
        let estimates = dv.localize(&anchors, &unknowns);
        let localized = estimates.iter().flatten().count();
        assert!(localized > 140, "only {localized}/150 localized");
        let err = dv.mean_error(&anchors, &unknowns).unwrap();
        assert!(err < 120.0, "mean error {err} exceeds one radio range");
    }

    #[test]
    fn straight_line_chain_exact() {
        // Anchors at both ends of a line, unknowns evenly between: hop
        // size equals true spacing, so estimates are near-exact along x.
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(400.0, 0.0),
            Point2::new(200.0, 90.0),
        ];
        let unknowns = vec![
            Point2::new(100.0, 0.0),
            Point2::new(200.0, 0.0),
            Point2::new(300.0, 0.0),
        ];
        let dv = DvHop::new(110.0);
        let estimates = dv.localize(&anchors, &unknowns);
        for (est, truth) in estimates.iter().zip(&unknowns) {
            let e = est.expect("chain is connected");
            assert!(
                e.position.distance(*truth) < 60.0,
                "truth {truth}, got {}",
                e.position
            );
        }
    }

    #[test]
    fn disconnected_node_unlocalized() {
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(50.0, 80.0),
        ];
        let unknowns = vec![Point2::new(50.0, 30.0), Point2::new(5000.0, 5000.0)];
        let dv = DvHop::new(120.0);
        let estimates = dv.localize(&anchors, &unknowns);
        assert!(estimates[0].is_some());
        assert!(estimates[1].is_none(), "unreachable node must not localize");
    }

    #[test]
    fn too_few_anchors_gives_none() {
        let anchors = vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        let unknowns = vec![Point2::new(50.0, 10.0)];
        let dv = DvHop::new(150.0);
        // Two anchors: MMSE needs three references, so no estimate.
        assert!(dv.localize(&anchors, &unknowns)[0].is_none());
    }

    #[test]
    fn lying_anchor_poisons_dv_hop_too() {
        // The motivation for applying the paper's detection to range-free
        // schemes: a compromised anchor declaring a false position skews
        // every hop-derived reference built from it.
        let honest_anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(380.0, 60.0),
            Point2::new(200.0, 300.0),
            Point2::new(50.0, 250.0),
        ];
        let unknowns = vec![
            Point2::new(150.0, 100.0),
            Point2::new(250.0, 150.0),
            Point2::new(100.0, 180.0),
        ];
        let dv = DvHop::new(200.0);
        let honest_err = dv.mean_error(&honest_anchors, &unknowns).unwrap();
        let mut declared = honest_anchors.clone();
        declared[0] = Point2::new(800.0, 800.0); // the lie in the flood packets
        let estimates = dv.localize_with_declared(&honest_anchors, &declared, &unknowns);
        let mut sum = 0.0;
        let mut k = 0usize;
        for (est, truth) in estimates.iter().zip(&unknowns) {
            if let Some(e) = est {
                sum += e.position.distance(*truth);
                k += 1;
            }
        }
        let lying_err = sum / k as f64;
        assert!(
            lying_err > honest_err + 50.0,
            "lie had no effect: {honest_err} -> {lying_err}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn range_validated() {
        DvHop::new(0.0);
    }
}
