//! The estimator interface shared by all localization schemes.

use crate::LocationReference;
use secloc_geometry::Point2;
use std::fmt;

/// Why an estimator could not produce a position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateError {
    /// Fewer references than the estimator's minimum (contained value).
    TooFewReferences {
        /// References supplied.
        got: usize,
        /// Minimum the estimator needs.
        need: usize,
    },
    /// The anchor geometry is degenerate (e.g. all anchors collinear), so
    /// the position is not uniquely determined.
    DegenerateGeometry,
    /// The iterative refinement failed to converge.
    DidNotConverge,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::TooFewReferences { got, need } => {
                write!(f, "estimator needs {need} references, got {got}")
            }
            EstimateError::DegenerateGeometry => {
                write!(f, "anchor geometry does not determine a unique position")
            }
            EstimateError::DidNotConverge => write!(f, "refinement did not converge"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// A position estimate with its goodness-of-fit diagnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated position.
    pub position: Point2,
    /// Root-mean-square of per-reference residuals at `position`, in feet.
    /// Large values indicate inconsistent (possibly malicious) references.
    pub residual_rms: f64,
}

impl Estimate {
    /// Computes the estimate diagnostics for `position` against `refs`.
    pub fn at(position: Point2, refs: &[LocationReference]) -> Estimate {
        let rms = if refs.is_empty() {
            0.0
        } else {
            (refs
                .iter()
                .map(|r| r.residual_at(position).powi(2))
                .sum::<f64>()
                / refs.len() as f64)
                .sqrt()
        };
        Estimate {
            position,
            residual_rms: rms,
        }
    }
}

/// A localization scheme mapping location references to a position.
pub trait Estimator {
    /// Estimates a position from `refs`.
    ///
    /// # Errors
    ///
    /// Returns an [`EstimateError`] when the references are too few or
    /// geometrically degenerate, or the solver fails to converge.
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError>;

    /// The minimum number of references this estimator requires.
    fn min_references(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_rms_zero_for_consistent_refs() {
        let truth = Point2::new(3.0, 4.0);
        let refs = vec![
            LocationReference::new(Point2::ORIGIN, 5.0),
            LocationReference::new(Point2::new(3.0, 0.0), 4.0),
        ];
        let e = Estimate::at(truth, &refs);
        assert!(e.residual_rms < 1e-12);
    }

    #[test]
    fn estimate_rms_positive_for_inconsistent_refs() {
        let refs = vec![
            LocationReference::new(Point2::ORIGIN, 5.0),
            LocationReference::new(Point2::new(3.0, 0.0), 100.0),
        ];
        let e = Estimate::at(Point2::new(3.0, 4.0), &refs);
        assert!(e.residual_rms > 50.0);
    }

    #[test]
    fn empty_refs_zero_rms() {
        let e = Estimate::at(Point2::ORIGIN, &[]);
        assert_eq!(e.residual_rms, 0.0);
    }

    #[test]
    fn error_display() {
        assert!(EstimateError::TooFewReferences { got: 2, need: 3 }
            .to_string()
            .contains("needs 3"));
        assert!(!EstimateError::DegenerateGeometry.to_string().is_empty());
        assert!(!EstimateError::DidNotConverge.to_string().is_empty());
    }
}
