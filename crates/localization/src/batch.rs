//! Batched MMSE solving over structure-of-arrays scratch.
//!
//! The simulator's impact phase solves one MMSE problem per sensor, and
//! robust estimators re-solve the same reference set many times while
//! filtering. The scalar [`MmseEstimator`] is
//! correct but re-derives anchor geometry from `&[LocationReference]` on
//! every call and forces callers to materialize filtered subsets into
//! fresh `Vec`s. This module provides the allocation-free fast path:
//!
//! - [`MmseScratch`] holds the reference set once as structure-of-arrays
//!   (`ax`/`ay`/`d`) plus an *active row* index list, so subsets are
//!   selected by index without copying references;
//! - [`BatchedMmse`] runs the exact linear-seed → Gauss–Newton → residual
//!   chain over the active rows.
//!
//! **Bit-identity contract:** every routine here performs the same float
//! operations in the same order as its scalar counterpart in `mmse.rs` /
//! `estimator.rs` / `gdop.rs`. The tests at the bottom enforce this with
//! `to_bits` equality over randomized inputs; any change to the scalar
//! code must be mirrored here (and vice versa) or they will fail.

use crate::{Estimate, EstimateError, Estimator, LocationReference, MmseEstimator};
use secloc_geometry::{Point2, Vector2};

/// Reusable structure-of-arrays geometry for one reference set.
///
/// `load` fills the arrays from a reference slice and marks every row
/// active; `retain` narrows the active set by original row index. Once the
/// buffers have grown to their high-water mark, reuse is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MmseScratch {
    pub(crate) ax: Vec<f64>,
    pub(crate) ay: Vec<f64>,
    pub(crate) d: Vec<f64>,
    /// Active rows, as indices into the SoA arrays, in solve order.
    pub(crate) idx: Vec<usize>,
}

impl MmseScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `refs` into the SoA arrays, replacing any previous contents,
    /// and marks every row active.
    pub fn load(&mut self, refs: &[LocationReference]) {
        self.ax.clear();
        self.ay.clear();
        self.d.clear();
        for r in refs {
            self.ax.push(r.anchor().x);
            self.ay.push(r.anchor().y);
            self.d.push(r.distance());
        }
        self.reset();
    }

    /// Restores every loaded row to the active set, in load order.
    pub fn reset(&mut self) {
        self.idx.clear();
        self.idx.extend(0..self.ax.len());
    }

    /// Narrows the active set to rows whose *original* index satisfies
    /// `keep`, preserving order.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        self.idx.retain(|&i| keep(i));
    }

    /// Number of loaded rows.
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// Whether no rows are loaded.
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Number of active rows.
    pub fn active_len(&self) -> usize {
        self.idx.len()
    }

    pub(crate) fn anchor(&self, i: usize) -> Point2 {
        Point2::new(self.ax[i], self.ay[i])
    }

    /// The scratch counterpart of [`Estimate::at`] over the active rows:
    /// same residual formula, same accumulation order.
    pub fn estimate_at(&self, position: Point2) -> Estimate {
        let rms = if self.idx.is_empty() {
            0.0
        } else {
            (self
                .idx
                .iter()
                .map(|&i| (position.distance(self.anchor(i)) - self.d[i]).powi(2))
                .sum::<f64>()
                / self.idx.len() as f64)
                .sqrt()
        };
        Estimate {
            position,
            residual_rms: rms,
        }
    }

    /// The scratch counterpart of [`crate::gdop::hdop_of_references`] over
    /// the active rows.
    pub fn hdop_at(&self, position: Point2) -> Option<f64> {
        crate::gdop::hdop_rows(position, self.idx.iter().map(|&i| self.anchor(i)))
    }
}

/// MMSE over [`MmseScratch`]: bit-identical to
/// [`MmseEstimator`] — same float operations in the
/// same order — but free of per-call allocation and able to solve filtered
/// subsets without materializing them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchedMmse {
    /// The scalar solver whose parameters (iterations, tolerance) govern
    /// the batched chain.
    pub inner: MmseEstimator,
}

impl BatchedMmse {
    /// Solves over the scratch's active rows.
    ///
    /// # Errors
    ///
    /// Exactly the scalar solver's errors: too few active rows, degenerate
    /// geometry in the linear seed, or a non-finite Gauss–Newton iterate.
    pub fn estimate(&self, s: &MmseScratch) -> Result<Estimate, EstimateError> {
        if s.idx.len() < self.inner.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: s.idx.len(),
                need: self.inner.min_references(),
            });
        }
        let seed = linear_seed_rows(s)?;
        let refined = gauss_newton_rows(&self.inner, seed, s)?;
        Ok(s.estimate_at(refined))
    }
}

/// Mirror of `mmse::linear_seed` over the active rows. Keep in lockstep.
fn linear_seed_rows(s: &MmseScratch) -> Result<Point2, EstimateError> {
    let &last = s.idx.last().expect("caller checked len >= 3");
    let (ax, ay, ad) = (s.ax[last], s.ay[last], s.d[last]);
    let (mut m00, mut m01, mut m11) = (0.0f64, 0.0f64, 0.0f64);
    let mut v = Vector2::ZERO;
    for &i in &s.idx[..s.idx.len() - 1] {
        let row_x = 2.0 * (s.ax[i] - ax);
        let row_y = 2.0 * (s.ay[i] - ay);
        let rhs =
            ad * ad - s.d[i] * s.d[i] + s.ax[i] * s.ax[i] + s.ay[i] * s.ay[i] - ax * ax - ay * ay;
        m00 += row_x * row_x;
        m01 += row_x * row_y;
        m11 += row_y * row_y;
        v += Vector2::new(row_x * rhs, row_y * rhs);
    }
    let det = m00 * m11 - m01 * m01;
    let scale = (m00 + m11).max(1e-30);
    if det.abs() < 1e-9 * scale * scale {
        return Err(EstimateError::DegenerateGeometry);
    }
    Ok(Point2::new(
        (m11 * v.x - m01 * v.y) / det,
        (m00 * v.y - m01 * v.x) / det,
    ))
}

/// Mirror of `MmseEstimator::gauss_newton` over the active rows. Keep in
/// lockstep.
fn gauss_newton_rows(
    est: &MmseEstimator,
    mut p: Point2,
    s: &MmseScratch,
) -> Result<Point2, EstimateError> {
    for _ in 0..est.max_iterations {
        let (mut jtj00, mut jtj01, mut jtj11) = (0.0f64, 0.0f64, 0.0f64);
        let mut jtr = Vector2::ZERO;
        for &i in &s.idx {
            let diff = p - s.anchor(i);
            let dist = diff.norm();
            if dist < 1e-9 {
                continue;
            }
            let g = diff / dist;
            let res = dist - s.d[i];
            jtj00 += g.x * g.x;
            jtj01 += g.x * g.y;
            jtj11 += g.y * g.y;
            jtr += g * res;
        }
        let det = jtj00 * jtj11 - jtj01 * jtj01;
        if det.abs() < 1e-12 {
            return Ok(p);
        }
        let dp = Vector2::new(
            -(jtj11 * jtr.x - jtj01 * jtr.y) / det,
            -(jtj00 * jtr.y - jtj01 * jtr.x) / det,
        );
        p += dp;
        if !p.is_finite() {
            return Err(EstimateError::DidNotConverge);
        }
        if dp.norm() < est.tolerance_ft {
            return Ok(p);
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_refs(rng: &mut StdRng, n: usize) -> Vec<LocationReference> {
        (0..n)
            .map(|_| {
                let a = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                LocationReference::new(a, rng.gen_range(0.0..300.0))
            })
            .collect()
    }

    fn assert_same(a: Result<Estimate, EstimateError>, b: Result<Estimate, EstimateError>) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
                assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
                assert_eq!(x.residual_rms.to_bits(), y.residual_rms.to_bits());
            }
            (x, y) => assert_eq!(x, y),
        }
    }

    #[test]
    fn full_set_matches_scalar_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        let scalar = MmseEstimator::default();
        let batched = BatchedMmse::default();
        let mut s = MmseScratch::new();
        for trial in 0..200 {
            let refs = random_refs(&mut rng, 3 + (trial % 10));
            s.load(&refs);
            assert_same(scalar.estimate(&refs), batched.estimate(&s));
        }
    }

    #[test]
    fn filtered_subset_matches_materialized_vec() {
        let mut rng = StdRng::seed_from_u64(43);
        let scalar = MmseEstimator::default();
        let batched = BatchedMmse::default();
        let mut s = MmseScratch::new();
        for _ in 0..200 {
            let refs = random_refs(&mut rng, 12);
            let mask: Vec<bool> = (0..refs.len()).map(|_| rng.gen_bool(0.6)).collect();
            let subset: Vec<LocationReference> = refs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(r, _)| *r)
                .collect();
            s.load(&refs);
            s.retain(|i| mask[i]);
            assert_same(scalar.estimate(&subset), batched.estimate(&s));
        }
    }

    #[test]
    fn scratch_rms_matches_estimate_at() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut s = MmseScratch::new();
        for n in 0..8 {
            let refs = random_refs(&mut rng, n);
            let p = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            s.load(&refs);
            let scalar = Estimate::at(p, &refs);
            let soa = s.estimate_at(p);
            assert_eq!(scalar.residual_rms.to_bits(), soa.residual_rms.to_bits());
        }
    }

    #[test]
    fn scratch_hdop_matches_gdop_module() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut s = MmseScratch::new();
        for n in 0..8 {
            let refs = random_refs(&mut rng, n);
            let p = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            s.load(&refs);
            assert_eq!(crate::gdop::hdop_of_references(p, &refs), s.hdop_at(p));
        }
    }

    #[test]
    fn reset_restores_the_full_set() {
        let mut rng = StdRng::seed_from_u64(46);
        let refs = random_refs(&mut rng, 9);
        let mut s = MmseScratch::new();
        s.load(&refs);
        s.retain(|i| i % 3 == 0);
        assert_eq!(s.active_len(), 3);
        s.reset();
        assert_eq!(s.active_len(), 9);
        let batched = BatchedMmse::default();
        assert_same(
            MmseEstimator::default().estimate(&refs),
            batched.estimate(&s),
        );
    }

    #[test]
    fn degenerate_and_too_few_errors_match_scalar() {
        let mut s = MmseScratch::new();
        let two = vec![
            LocationReference::new(Point2::new(0.0, 0.0), 5.0),
            LocationReference::new(Point2::new(10.0, 0.0), 5.0),
        ];
        s.load(&two);
        assert_eq!(
            BatchedMmse::default().estimate(&s),
            Err(EstimateError::TooFewReferences { got: 2, need: 3 })
        );
        let line: Vec<LocationReference> = (0..4)
            .map(|i| LocationReference::new(Point2::new(10.0 * i as f64, 0.0), 7.0))
            .collect();
        s.load(&line);
        assert_eq!(
            BatchedMmse::default().estimate(&s),
            Err(EstimateError::DegenerateGeometry)
        );
    }

    #[test]
    fn reuse_does_not_leak_previous_rows() {
        let mut rng = StdRng::seed_from_u64(47);
        let big = random_refs(&mut rng, 20);
        let small = random_refs(&mut rng, 4);
        let mut s = MmseScratch::new();
        s.load(&big);
        s.load(&small);
        assert_eq!(s.len(), 4);
        assert_same(
            MmseEstimator::default().estimate(&small),
            BatchedMmse::default().estimate(&s),
        );
    }
}
