//! Batched MMSE solving over structure-of-arrays scratch.
//!
//! The simulator's impact phase solves one MMSE problem per sensor, and
//! robust estimators re-solve the same reference set many times while
//! filtering. The scalar [`MmseEstimator`] is
//! correct but re-derives anchor geometry from `&[LocationReference]` on
//! every call and forces callers to materialize filtered subsets into
//! fresh `Vec`s. This module provides the allocation-free fast path:
//!
//! - [`MmseScratch`] holds the reference set once as structure-of-arrays
//!   (`ax`/`ay`/`d`) plus an *active row* index list, so subsets are
//!   selected by index without copying references;
//! - [`BatchedMmse`] runs the exact linear-seed → Gauss–Newton → residual
//!   chain over the active rows.
//!
//! **Bit-identity contract:** every routine here performs the same float
//! operations in the same order as its scalar counterpart in `mmse.rs` /
//! `estimator.rs` / `gdop.rs`. The tests at the bottom enforce this with
//! `to_bits` equality over randomized inputs; any change to the scalar
//! code must be mirrored here (and vice versa) or they will fail.

use crate::{Estimate, EstimateError, Estimator, LocationReference, MmseEstimator};
use secloc_geometry::{Point2, Vector2};

/// Reusable structure-of-arrays geometry for one reference set.
///
/// `load` fills the arrays from a reference slice and marks every row
/// active; `retain` narrows the active set by original row index. Once the
/// buffers have grown to their high-water mark, reuse is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MmseScratch {
    pub(crate) ax: Vec<f64>,
    pub(crate) ay: Vec<f64>,
    pub(crate) d: Vec<f64>,
    /// Active rows, as indices into the SoA arrays, in solve order.
    pub(crate) idx: Vec<usize>,
}

impl MmseScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch pre-sized for reference sets of up to `rows`
    /// rows — e.g. the topology's maximum audible-beacon count — so a
    /// whole run's worth of `load` calls never reallocates. Pair with
    /// [`MmseScratch::capacity`] and a debug assertion to catch mid-run
    /// growth.
    pub fn with_capacity(rows: usize) -> Self {
        MmseScratch {
            ax: Vec::with_capacity(rows),
            ay: Vec::with_capacity(rows),
            d: Vec::with_capacity(rows),
            idx: Vec::with_capacity(rows),
        }
    }

    /// The row capacity currently reserved (the smallest of the SoA
    /// buffers' capacities — they grow in lockstep, so after
    /// [`MmseScratch::with_capacity`] this is exactly the requested size
    /// until a larger set is loaded).
    pub fn capacity(&self) -> usize {
        self.ax
            .capacity()
            .min(self.ay.capacity())
            .min(self.d.capacity())
            .min(self.idx.capacity())
    }

    /// Loads `refs` into the SoA arrays, replacing any previous contents,
    /// and marks every row active.
    pub fn load(&mut self, refs: &[LocationReference]) {
        self.load_from_iter(refs.iter().copied());
    }

    /// [`MmseScratch::load`] from any reference iterator — lets callers
    /// holding references embedded in richer records load without
    /// materializing a `Vec<LocationReference>` first.
    pub fn load_from_iter(&mut self, refs: impl Iterator<Item = LocationReference>) {
        self.ax.clear();
        self.ay.clear();
        self.d.clear();
        for r in refs {
            self.ax.push(r.anchor().x);
            self.ay.push(r.anchor().y);
            self.d.push(r.distance());
        }
        self.reset();
    }

    /// Restores every loaded row to the active set, in load order.
    pub fn reset(&mut self) {
        self.idx.clear();
        self.idx.extend(0..self.ax.len());
    }

    /// Narrows the active set to rows whose *original* index satisfies
    /// `keep`, preserving order.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        self.idx.retain(|&i| keep(i));
    }

    /// Number of loaded rows.
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// Whether no rows are loaded.
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Number of active rows.
    pub fn active_len(&self) -> usize {
        self.idx.len()
    }

    pub(crate) fn anchor(&self, i: usize) -> Point2 {
        Point2::new(self.ax[i], self.ay[i])
    }

    /// The scratch counterpart of [`Estimate::at`] over the active rows:
    /// same residual formula, same accumulation order.
    pub fn estimate_at(&self, position: Point2) -> Estimate {
        let rms = if self.idx.is_empty() {
            0.0
        } else {
            (self
                .idx
                .iter()
                .map(|&i| (position.distance(self.anchor(i)) - self.d[i]).powi(2))
                .sum::<f64>()
                / self.idx.len() as f64)
                .sqrt()
        };
        Estimate {
            position,
            residual_rms: rms,
        }
    }

    /// The scratch counterpart of [`crate::gdop::hdop_of_references`] over
    /// the active rows.
    pub fn hdop_at(&self, position: Point2) -> Option<f64> {
        crate::gdop::hdop_rows(position, self.idx.iter().map(|&i| self.anchor(i)))
    }
}

/// MMSE over [`MmseScratch`]: bit-identical to
/// [`MmseEstimator`] — same float operations in the
/// same order — but free of per-call allocation and able to solve filtered
/// subsets without materializing them. The inner accumulations run through
/// the lane kernels of [`crate::simd`]; with `fast_math` off (the default)
/// their exact reduction order keeps the bit-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchedMmse {
    /// The scalar solver whose parameters (iterations, tolerance) govern
    /// the batched chain.
    pub inner: MmseEstimator,
    /// Opt into the reassociated lane reduction (`(p0+p1)+(p2+p3)` over
    /// four partial accumulators). Faster, but results are only
    /// tolerance-equal to the scalar chain — leave off anywhere outcomes
    /// must stay bit-identical.
    pub fast_math: bool,
}

impl BatchedMmse {
    /// The bit-identical solver around `inner` (FastMath off).
    pub fn exact(inner: MmseEstimator) -> Self {
        BatchedMmse {
            inner,
            fast_math: false,
        }
    }

    /// Solves over the scratch's active rows.
    ///
    /// # Errors
    ///
    /// Exactly the scalar solver's errors: too few active rows, degenerate
    /// geometry in the linear seed, or a non-finite Gauss–Newton iterate.
    pub fn estimate(&self, s: &MmseScratch) -> Result<Estimate, EstimateError> {
        if s.idx.len() < self.inner.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: s.idx.len(),
                need: self.inner.min_references(),
            });
        }
        let seed = linear_seed_rows(s, self.fast_math)?;
        let refined = gauss_newton_rows(&self.inner, seed, s, self.fast_math)?;
        Ok(s.estimate_at(refined))
    }
}

/// Mirror of `mmse::linear_seed` over the active rows, with the row
/// accumulation delegated to the [`crate::simd`] lane kernel. Keep the
/// surrounding solve in lockstep with the scalar version.
fn linear_seed_rows(s: &MmseScratch, fast: bool) -> Result<Point2, EstimateError> {
    let &last = s.idx.last().expect("caller checked len >= 3");
    // The active set is the identity exactly when nothing was filtered
    // (`idx` only ever shrinks from `0..len`); route that common case
    // through the contiguous kernel instantiation — same operations in the
    // same order, but addressable without the index gather.
    let acc = if s.idx.len() == s.ax.len() {
        // Slices trimmed to exactly the row count so the bounds checks
        // inside the kernel fold away (the loop bound and the slice length
        // become the same value).
        let m = s.idx.len() - 1;
        crate::simd::seed_accumulate(
            &s.ax[..m],
            &s.ay[..m],
            &s.d[..m],
            crate::simd::Dense(m),
            s.ax[last],
            s.ay[last],
            s.d[last],
            fast,
        )
    } else {
        crate::simd::seed_accumulate(
            &s.ax,
            &s.ay,
            &s.d,
            &s.idx[..s.idx.len() - 1],
            s.ax[last],
            s.ay[last],
            s.d[last],
            fast,
        )
    };
    let (m00, m01, m11) = (acc.m00, acc.m01, acc.m11);
    let v = Vector2::new(acc.vx, acc.vy);
    let det = m00 * m11 - m01 * m01;
    let scale = (m00 + m11).max(1e-30);
    if det.abs() < 1e-9 * scale * scale {
        return Err(EstimateError::DegenerateGeometry);
    }
    Ok(Point2::new(
        (m11 * v.x - m01 * v.y) / det,
        (m00 * v.y - m01 * v.x) / det,
    ))
}

/// Mirror of `MmseEstimator::gauss_newton` over the active rows, with the
/// per-iteration accumulation delegated to the [`crate::simd`] lane
/// kernel. Keep the surrounding solve in lockstep with the scalar version.
fn gauss_newton_rows(
    est: &MmseEstimator,
    mut p: Point2,
    s: &MmseScratch,
    fast: bool,
) -> Result<Point2, EstimateError> {
    let dense = s.idx.len() == s.ax.len();
    let n = s.idx.len();
    for _ in 0..est.max_iterations {
        let acc = if dense {
            // Trimmed slices: loop bound == slice length, bounds checks fold.
            crate::simd::gn_accumulate(
                p.x,
                p.y,
                &s.ax[..n],
                &s.ay[..n],
                &s.d[..n],
                crate::simd::Dense(n),
                fast,
            )
        } else {
            crate::simd::gn_accumulate(p.x, p.y, &s.ax, &s.ay, &s.d, s.idx.as_slice(), fast)
        };
        let (jtj00, jtj01, jtj11) = (acc.jtj00, acc.jtj01, acc.jtj11);
        let jtr = Vector2::new(acc.jtrx, acc.jtry);
        let det = jtj00 * jtj11 - jtj01 * jtj01;
        if det.abs() < 1e-12 {
            return Ok(p);
        }
        let dp = Vector2::new(
            -(jtj11 * jtr.x - jtj01 * jtr.y) / det,
            -(jtj00 * jtr.y - jtj01 * jtr.x) / det,
        );
        p += dp;
        if !p.is_finite() {
            return Err(EstimateError::DidNotConverge);
        }
        if dp.norm() < est.tolerance_ft {
            return Ok(p);
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_refs(rng: &mut StdRng, n: usize) -> Vec<LocationReference> {
        (0..n)
            .map(|_| {
                let a = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                LocationReference::new(a, rng.gen_range(0.0..300.0))
            })
            .collect()
    }

    fn assert_same(a: Result<Estimate, EstimateError>, b: Result<Estimate, EstimateError>) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
                assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
                assert_eq!(x.residual_rms.to_bits(), y.residual_rms.to_bits());
            }
            (x, y) => assert_eq!(x, y),
        }
    }

    #[test]
    fn full_set_matches_scalar_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        let scalar = MmseEstimator::default();
        let batched = BatchedMmse::default();
        let mut s = MmseScratch::new();
        for trial in 0..200 {
            let refs = random_refs(&mut rng, 3 + (trial % 10));
            s.load(&refs);
            assert_same(scalar.estimate(&refs), batched.estimate(&s));
        }
    }

    #[test]
    fn filtered_subset_matches_materialized_vec() {
        let mut rng = StdRng::seed_from_u64(43);
        let scalar = MmseEstimator::default();
        let batched = BatchedMmse::default();
        let mut s = MmseScratch::new();
        for _ in 0..200 {
            let refs = random_refs(&mut rng, 12);
            let mask: Vec<bool> = (0..refs.len()).map(|_| rng.gen_bool(0.6)).collect();
            let subset: Vec<LocationReference> = refs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(r, _)| *r)
                .collect();
            s.load(&refs);
            s.retain(|i| mask[i]);
            assert_same(scalar.estimate(&subset), batched.estimate(&s));
        }
    }

    #[test]
    fn scratch_rms_matches_estimate_at() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut s = MmseScratch::new();
        for n in 0..8 {
            let refs = random_refs(&mut rng, n);
            let p = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            s.load(&refs);
            let scalar = Estimate::at(p, &refs);
            let soa = s.estimate_at(p);
            assert_eq!(scalar.residual_rms.to_bits(), soa.residual_rms.to_bits());
        }
    }

    #[test]
    fn scratch_hdop_matches_gdop_module() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut s = MmseScratch::new();
        for n in 0..8 {
            let refs = random_refs(&mut rng, n);
            let p = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            s.load(&refs);
            assert_eq!(crate::gdop::hdop_of_references(p, &refs), s.hdop_at(p));
        }
    }

    #[test]
    fn reset_restores_the_full_set() {
        let mut rng = StdRng::seed_from_u64(46);
        let refs = random_refs(&mut rng, 9);
        let mut s = MmseScratch::new();
        s.load(&refs);
        s.retain(|i| i % 3 == 0);
        assert_eq!(s.active_len(), 3);
        s.reset();
        assert_eq!(s.active_len(), 9);
        let batched = BatchedMmse::default();
        assert_same(
            MmseEstimator::default().estimate(&refs),
            batched.estimate(&s),
        );
    }

    #[test]
    fn degenerate_and_too_few_errors_match_scalar() {
        let mut s = MmseScratch::new();
        let two = vec![
            LocationReference::new(Point2::new(0.0, 0.0), 5.0),
            LocationReference::new(Point2::new(10.0, 0.0), 5.0),
        ];
        s.load(&two);
        assert_eq!(
            BatchedMmse::default().estimate(&s),
            Err(EstimateError::TooFewReferences { got: 2, need: 3 })
        );
        let line: Vec<LocationReference> = (0..4)
            .map(|i| LocationReference::new(Point2::new(10.0 * i as f64, 0.0), 7.0))
            .collect();
        s.load(&line);
        assert_eq!(
            BatchedMmse::default().estimate(&s),
            Err(EstimateError::DegenerateGeometry)
        );
    }

    #[test]
    fn reuse_does_not_leak_previous_rows() {
        let mut rng = StdRng::seed_from_u64(47);
        let big = random_refs(&mut rng, 20);
        let small = random_refs(&mut rng, 4);
        let mut s = MmseScratch::new();
        s.load(&big);
        s.load(&small);
        assert_eq!(s.len(), 4);
        assert_same(
            MmseEstimator::default().estimate(&small),
            BatchedMmse::default().estimate(&s),
        );
    }
}
