//! Minimum-mean-square-error multilateration.

use crate::{Estimate, EstimateError, Estimator, LocationReference};
use secloc_geometry::{Point2, Vector2};

/// Least-squares multilateration, the paper's canonical stage-2 estimator.
///
/// Solving `min Σ (|p − aᵢ| − dᵢ)²` proceeds in two steps:
///
/// 1. **Linear seed.** Subtracting the circle equation of the last anchor
///    from every other yields a linear system `A p = b`, solved in closed
///    form via the 2×2 normal equations.
/// 2. **Gauss–Newton refinement** of the true nonlinear objective, which
///    tightens the seed under noisy distances.
///
/// # Examples
///
/// ```
/// use secloc_geometry::Point2;
/// use secloc_localization::{Estimator, LocationReference, MmseEstimator};
///
/// let refs = vec![
///     LocationReference::new(Point2::new(0.0, 0.0), 5.0),
///     LocationReference::new(Point2::new(6.0, 0.0), 5.0),
///     LocationReference::new(Point2::new(3.0, 9.0), 5.0),
/// ];
/// let est = MmseEstimator::default().estimate(&refs)?;
/// assert!(est.position.distance(Point2::new(3.0, 4.0)) < 0.1);
/// # Ok::<(), secloc_localization::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmseEstimator {
    /// Maximum Gauss–Newton iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the update step, in feet.
    pub tolerance_ft: f64,
}

impl Default for MmseEstimator {
    fn default() -> Self {
        MmseEstimator {
            max_iterations: 50,
            tolerance_ft: 1e-6,
        }
    }
}

impl Estimator for MmseEstimator {
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        if refs.len() < self.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: refs.len(),
                need: self.min_references(),
            });
        }
        let seed = linear_seed(refs)?;
        let refined = self.gauss_newton(seed, refs)?;
        Ok(Estimate::at(refined, refs))
    }

    fn min_references(&self) -> usize {
        3
    }
}

impl MmseEstimator {
    fn gauss_newton(
        &self,
        mut p: Point2,
        refs: &[LocationReference],
    ) -> Result<Point2, EstimateError> {
        for _ in 0..self.max_iterations {
            // Normal equations J^T J dp = -J^T r with row_i =
            // d(residual_i)/dp = (p - a_i)/|p - a_i|.
            let (mut jtj00, mut jtj01, mut jtj11) = (0.0f64, 0.0f64, 0.0f64);
            let mut jtr = Vector2::ZERO;
            for r in refs {
                let diff = p - r.anchor();
                let dist = diff.norm();
                if dist < 1e-9 {
                    continue; // gradient undefined exactly on an anchor
                }
                let g = diff / dist;
                let res = dist - r.distance();
                jtj00 += g.x * g.x;
                jtj01 += g.x * g.y;
                jtj11 += g.y * g.y;
                jtr += g * res;
            }
            let det = jtj00 * jtj11 - jtj01 * jtj01;
            if det.abs() < 1e-12 {
                // Singular normal matrix: anchors effectively collinear from
                // here; the linear seed is the best available answer.
                return Ok(p);
            }
            let dp = Vector2::new(
                -(jtj11 * jtr.x - jtj01 * jtr.y) / det,
                -(jtj00 * jtr.y - jtj01 * jtr.x) / det,
            );
            p += dp;
            if !p.is_finite() {
                return Err(EstimateError::DidNotConverge);
            }
            if dp.norm() < self.tolerance_ft {
                return Ok(p);
            }
        }
        // Ran out of iterations — still return the last iterate; callers can
        // judge quality from the residual. (Noisy references routinely stop
        // short of the tight tolerance without being wrong.)
        Ok(p)
    }
}

/// Closed-form linearised solution: subtract the last reference's circle
/// equation from each of the others.
fn linear_seed(refs: &[LocationReference]) -> Result<Point2, EstimateError> {
    let last = refs.last().expect("caller checked len >= 3");
    let (ax, ay, ad) = (last.anchor().x, last.anchor().y, last.distance());
    // Rows: 2(x_i - ax) x + 2(y_i - ay) y = d_n^2 - d_i^2 + |a_i|^2 - |a_n|^2
    let (mut m00, mut m01, mut m11) = (0.0f64, 0.0f64, 0.0f64);
    let mut v = Vector2::ZERO;
    for r in &refs[..refs.len() - 1] {
        let row_x = 2.0 * (r.anchor().x - ax);
        let row_y = 2.0 * (r.anchor().y - ay);
        let rhs = ad * ad - r.distance() * r.distance()
            + r.anchor().x * r.anchor().x
            + r.anchor().y * r.anchor().y
            - ax * ax
            - ay * ay;
        m00 += row_x * row_x;
        m01 += row_x * row_y;
        m11 += row_y * row_y;
        v += Vector2::new(row_x * rhs, row_y * rhs);
    }
    let det = m00 * m11 - m01 * m01;
    // Scale-aware singularity test: det has units ft^4.
    let scale = (m00 + m11).max(1e-30);
    if det.abs() < 1e-9 * scale * scale {
        return Err(EstimateError::DegenerateGeometry);
    }
    Ok(Point2::new(
        (m11 * v.x - m01 * v.y) / det,
        (m00 * v.y - m01 * v.x) / det,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_refs(truth: Point2, anchors: &[(f64, f64)]) -> Vec<LocationReference> {
        anchors
            .iter()
            .map(|&(x, y)| {
                let a = Point2::new(x, y);
                LocationReference::new(a, a.distance(truth))
            })
            .collect()
    }

    #[test]
    fn exact_recovery_from_three_anchors() {
        let truth = Point2::new(40.0, 60.0);
        let refs = exact_refs(truth, &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]);
        let e = MmseEstimator::default().estimate(&refs).unwrap();
        assert!(e.position.distance(truth) < 1e-6, "{}", e.position);
        assert!(e.residual_rms < 1e-6);
    }

    #[test]
    fn exact_recovery_overdetermined() {
        let truth = Point2::new(123.0, 456.0);
        let refs = exact_refs(
            truth,
            &[
                (0.0, 0.0),
                (1000.0, 0.0),
                (0.0, 1000.0),
                (1000.0, 1000.0),
                (500.0, 100.0),
            ],
        );
        let e = MmseEstimator::default().estimate(&refs).unwrap();
        assert!(e.position.distance(truth) < 1e-6);
    }

    #[test]
    fn noisy_distances_recovered_within_error_scale() {
        let truth = Point2::new(420.0, 310.0);
        let anchors = [
            (100.0, 100.0),
            (900.0, 150.0),
            (500.0, 800.0),
            (200.0, 600.0),
            (750.0, 500.0),
            (400.0, 50.0),
        ];
        let mut rng = StdRng::seed_from_u64(8);
        let refs: Vec<LocationReference> = anchors
            .iter()
            .map(|&(x, y)| {
                let a = Point2::new(x, y);
                let noise: f64 = rng.gen_range(-10.0..=10.0);
                LocationReference::new(a, (a.distance(truth) + noise).max(0.0))
            })
            .collect();
        let e = MmseEstimator::default().estimate(&refs).unwrap();
        // With eps = 10 ft and 6 anchors, the estimate lands within ~eps.
        assert!(
            e.position.distance(truth) < 12.0,
            "off by {}",
            e.position.distance(truth)
        );
    }

    #[test]
    fn malicious_reference_skews_estimate() {
        // The attack the paper defends against: one lying beacon drags the
        // position away; this is the baseline "no detection" damage.
        let truth = Point2::new(100.0, 100.0);
        let mut refs = exact_refs(truth, &[(0.0, 0.0), (200.0, 0.0), (0.0, 200.0)]);
        refs.push(LocationReference::new(Point2::new(200.0, 200.0), 400.0));
        let e = MmseEstimator::default().estimate(&refs).unwrap();
        assert!(e.position.distance(truth) > 20.0, "attack had no effect");
        assert!(
            e.residual_rms > 10.0,
            "diagnostic failed to flag inconsistency"
        );
    }

    #[test]
    fn too_few_references() {
        let refs = exact_refs(Point2::ORIGIN, &[(1.0, 0.0), (0.0, 1.0)]);
        assert_eq!(
            MmseEstimator::default().estimate(&refs),
            Err(EstimateError::TooFewReferences { got: 2, need: 3 })
        );
    }

    #[test]
    fn collinear_anchors_rejected() {
        let truth = Point2::new(5.0, 7.0);
        let refs = exact_refs(truth, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        assert_eq!(
            MmseEstimator::default().estimate(&refs),
            Err(EstimateError::DegenerateGeometry)
        );
    }

    #[test]
    fn anchor_coincident_with_truth_is_fine() {
        let truth = Point2::new(50.0, 50.0);
        let refs = exact_refs(truth, &[(50.0, 50.0), (0.0, 0.0), (100.0, 0.0)]);
        let e = MmseEstimator::default().estimate(&refs).unwrap();
        assert!(e.position.distance(truth) < 1e-4);
    }

    #[test]
    fn min_references_is_three() {
        assert_eq!(MmseEstimator::default().min_references(), 3);
    }
}
