//! Min–max (bounding box) localization.

use crate::{Estimate, EstimateError, Estimator, LocationReference};
use secloc_geometry::Point2;

/// The min–max bounding-box estimator (Savvides et al., "bits and flops").
///
/// Each reference constrains the node to the square of side `2d` centred on
/// the anchor; the estimate is the centre of the intersection of all such
/// squares. Cheaper than [`crate::MmseEstimator`] and needs only two
/// references, at some accuracy cost — a useful baseline for the paper's
/// end-to-end impact experiments.
///
/// When inconsistent (e.g. malicious) references make the intersection
/// empty, the midpoint between the crossed bounds is still returned and the
/// inconsistency shows up in [`Estimate::residual_rms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinMaxEstimator;

impl Estimator for MinMaxEstimator {
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        if refs.len() < self.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: refs.len(),
                need: self.min_references(),
            });
        }
        let mut lo_x = f64::NEG_INFINITY;
        let mut lo_y = f64::NEG_INFINITY;
        let mut hi_x = f64::INFINITY;
        let mut hi_y = f64::INFINITY;
        for r in refs {
            lo_x = lo_x.max(r.anchor().x - r.distance());
            lo_y = lo_y.max(r.anchor().y - r.distance());
            hi_x = hi_x.min(r.anchor().x + r.distance());
            hi_y = hi_y.min(r.anchor().y + r.distance());
        }
        let position = Point2::new((lo_x + hi_x) / 2.0, (lo_y + hi_y) / 2.0);
        Ok(Estimate::at(position, refs))
    }

    fn min_references(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_refs(truth: Point2, anchors: &[(f64, f64)]) -> Vec<LocationReference> {
        anchors
            .iter()
            .map(|&(x, y)| {
                let a = Point2::new(x, y);
                LocationReference::new(a, a.distance(truth))
            })
            .collect()
    }

    #[test]
    fn symmetric_anchors_give_exact_center() {
        let truth = Point2::new(50.0, 50.0);
        let refs = exact_refs(
            truth,
            &[(0.0, 50.0), (100.0, 50.0), (50.0, 0.0), (50.0, 100.0)],
        );
        let e = MinMaxEstimator.estimate(&refs).unwrap();
        assert!(e.position.distance(truth) < 1e-9);
    }

    #[test]
    fn reasonable_accuracy_on_asymmetric_layout() {
        let truth = Point2::new(30.0, 70.0);
        let refs = exact_refs(
            truth,
            &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)],
        );
        let e = MinMaxEstimator.estimate(&refs).unwrap();
        // Min-max is coarse; just require the right neighbourhood.
        assert!(e.position.distance(truth) < 25.0, "{}", e.position);
    }

    #[test]
    fn needs_two_references() {
        let refs = exact_refs(Point2::ORIGIN, &[(1.0, 1.0)]);
        assert_eq!(
            MinMaxEstimator.estimate(&refs),
            Err(EstimateError::TooFewReferences { got: 1, need: 2 })
        );
        assert_eq!(MinMaxEstimator.min_references(), 2);
    }

    #[test]
    fn works_with_two_references() {
        let truth = Point2::new(5.0, 5.0);
        let refs = exact_refs(truth, &[(0.0, 5.0), (10.0, 5.0)]);
        let e = MinMaxEstimator.estimate(&refs).unwrap();
        assert!(e.position.distance(truth) < 5.1);
    }

    #[test]
    fn malicious_reference_shifts_box_and_raises_residual() {
        let truth = Point2::new(50.0, 50.0);
        let mut refs = exact_refs(truth, &[(0.0, 50.0), (100.0, 50.0), (50.0, 0.0)]);
        let honest = MinMaxEstimator.estimate(&refs).unwrap();
        refs.push(LocationReference::new(Point2::new(50.0, 300.0), 50.0));
        let attacked = MinMaxEstimator.estimate(&refs).unwrap();
        assert!(attacked.position.distance(truth) > honest.position.distance(truth) + 10.0);
        assert!(attacked.residual_rms > honest.residual_rms);
    }

    #[test]
    fn empty_intersection_still_returns_midpoint() {
        // Two disjoint constraint boxes.
        let refs = vec![
            LocationReference::new(Point2::new(0.0, 0.0), 1.0),
            LocationReference::new(Point2::new(100.0, 0.0), 1.0),
        ];
        let e = MinMaxEstimator.estimate(&refs).unwrap();
        assert!(e.position.is_finite());
        assert!((e.position.x - 50.0).abs() < 1e-9);
        assert!(e.residual_rms > 10.0, "inconsistency must be visible");
    }
}
