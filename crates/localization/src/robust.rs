//! Attack-resistant estimators.
//!
//! The reproduced paper removes malicious beacons from the *network*; a
//! complementary line of work hardens the *estimator* instead, tolerating
//! bad references without identifying the culprits. These baselines make
//! that trade-off measurable (see the `ablation_defenses` bench):
//!
//! - [`ResidualFilterEstimator`] — iteratively re-fit and drop the worst
//!   residual until the fit is consistent with the ranging error bound;
//! - [`ConsensusEstimator`] — RANSAC-style: fit minimal subsets, keep the
//!   largest inlier consensus, refit on it.
//!
//! Both degrade gracefully: with no malicious references they behave like
//! plain MMSE; with a minority of poisoned references they recover; with a
//! poisoned *majority* they fail like everything else — which is exactly
//! why the paper argues for revocation rather than estimator hardening
//! alone.

use crate::batch::{BatchedMmse, MmseScratch};
use crate::{Estimate, EstimateError, Estimator, LocationReference, MmseEstimator};
use secloc_crypto::prf::prf64;

/// Iterative residual filtering around [`MmseEstimator`].
///
/// Fit all references; while the worst absolute residual exceeds
/// `inlier_threshold_ft` and more than `min_references` remain, drop the
/// worst reference and refit.
///
/// # Examples
///
/// ```
/// use secloc_geometry::Point2;
/// use secloc_localization::{Estimator, LocationReference, ResidualFilterEstimator};
///
/// let truth = Point2::new(50.0, 50.0);
/// let mut refs: Vec<LocationReference> = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]
///     .iter()
///     .map(|&(x, y)| {
///         let a = Point2::new(x, y);
///         LocationReference::new(a, a.distance(truth))
///     })
///     .collect();
/// refs.push(LocationReference::new(Point2::new(400.0, 400.0), 20.0)); // poison
/// let est = ResidualFilterEstimator::default().estimate(&refs)?;
/// assert!(est.position.distance(truth) < 1.0);
/// # Ok::<(), secloc_localization::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualFilterEstimator {
    /// Absolute residual above which a reference counts as an outlier.
    pub inlier_threshold_ft: f64,
    /// Never drop below this many references.
    pub min_references: usize,
    /// Inner least-squares solver.
    pub inner: MmseEstimator,
}

impl Default for ResidualFilterEstimator {
    fn default() -> Self {
        ResidualFilterEstimator {
            inlier_threshold_ft: 20.0, // 2 * the paper's eps
            min_references: 3,
            inner: MmseEstimator::default(),
        }
    }
}

impl Estimator for ResidualFilterEstimator {
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        let mut working: Vec<LocationReference> = refs.to_vec();
        loop {
            let est = self.inner.estimate(&working)?;
            let (worst_idx, worst_abs) = working
                .iter()
                .enumerate()
                .map(|(i, r)| (i, r.residual_at(est.position).abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty reference set");
            if worst_abs <= self.inlier_threshold_ft || working.len() <= self.min_references {
                return Ok(est);
            }
            working.swap_remove(worst_idx);
        }
    }

    fn min_references(&self) -> usize {
        self.inner.min_references()
    }
}

impl ResidualFilterEstimator {
    /// [`Estimator::estimate`] routed through a caller-owned scratch:
    /// bit-identical results, but the working set lives in `scratch`'s
    /// index list instead of a fresh `Vec` per call.
    pub fn estimate_with(
        &self,
        refs: &[LocationReference],
        scratch: &mut MmseScratch,
    ) -> Result<Estimate, EstimateError> {
        scratch.load(refs);
        let solver = BatchedMmse::exact(self.inner);
        loop {
            let est = solver.estimate(scratch)?;
            // Lane-unrolled scan in active order, exactly like the
            // Vec-backed loop (same max_by tie-break); the index list
            // undergoes the same swap_remove permutation the working Vec
            // did, so the scan order stays in lockstep.
            let (worst_pos, worst_abs) = crate::simd::worst_abs_residual(
                est.position.x,
                est.position.y,
                &scratch.ax,
                &scratch.ay,
                &scratch.d,
                scratch.idx.as_slice(),
            );
            if worst_abs <= self.inlier_threshold_ft || scratch.active_len() <= self.min_references
            {
                return Ok(est);
            }
            scratch.idx.swap_remove(worst_pos);
        }
    }
}

/// RANSAC-style consensus estimation.
///
/// Draw `iterations` minimal subsets (3 references), fit each, count the
/// references within `inlier_threshold_ft` of the fit, keep the largest
/// consensus set and refit on it. Subset draws come from a seeded PRF so
/// results are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusEstimator {
    /// Absolute residual for inlier classification.
    pub inlier_threshold_ft: f64,
    /// Number of minimal subsets to try.
    pub iterations: u32,
    /// Subset-sampling seed.
    pub seed: u64,
    /// Inner least-squares solver.
    pub inner: MmseEstimator,
}

impl Default for ConsensusEstimator {
    fn default() -> Self {
        ConsensusEstimator {
            inlier_threshold_ft: 20.0,
            iterations: 64,
            seed: 0x005e_c10c,
            inner: MmseEstimator::default(),
        }
    }
}

impl ConsensusEstimator {
    fn sample_triple(&self, n: usize, iter: u32) -> [usize; 3] {
        // Three distinct indices from a keyed PRF of the iteration number.
        let mut picks = [0usize; 3];
        let mut k = 0;
        let mut counter = 0u64;
        while k < 3 {
            let tag = prf64((self.seed, iter as u64), &counter.to_le_bytes());
            counter += 1;
            let idx = (tag % n as u64) as usize;
            if !picks[..k].contains(&idx) {
                picks[k] = idx;
                k += 1;
            }
        }
        picks
    }

    /// [`Estimator::estimate`] routed through a caller-owned scratch:
    /// bit-identical results, but inlier sets are tracked as index
    /// selections instead of per-iteration `Vec`s.
    pub fn estimate_with(
        &self,
        refs: &[LocationReference],
        scratch: &mut MmseScratch,
    ) -> Result<Estimate, EstimateError> {
        if refs.len() < self.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: refs.len(),
                need: self.min_references(),
            });
        }
        if refs.len() == 3 {
            return self.inner.estimate(refs);
        }
        scratch.load(refs);
        // First pass: count inliers per candidate fit; only the winning
        // candidate's membership is materialized (as an index selection).
        // Strictly-greater comparison keeps the same first-best winner the
        // Vec-backed loop picks.
        let mut best: Option<(usize, secloc_geometry::Point2)> = None;
        for iter in 0..self.iterations {
            let idx = self.sample_triple(refs.len(), iter);
            let subset = [refs[idx[0]], refs[idx[1]], refs[idx[2]]];
            let Ok(candidate) = self.inner.estimate(&subset) else {
                continue; // collinear minimal sample
            };
            let count = crate::simd::count_within(
                candidate.position.x,
                candidate.position.y,
                &scratch.ax,
                &scratch.ay,
                &scratch.d,
                refs.len(),
                self.inlier_threshold_ft,
            );
            if count > best.map_or(0, |(n, _)| n) {
                best = Some((count, candidate.position));
            }
        }
        let Some((count, winner)) = best else {
            return Err(EstimateError::DegenerateGeometry);
        };
        if count < self.min_references() {
            return Err(EstimateError::DegenerateGeometry);
        }
        let (ax, ay, d) = (&scratch.ax, &scratch.ay, &scratch.d);
        scratch.idx.retain(|&i| {
            (winner.distance(secloc_geometry::Point2::new(ax[i], ay[i])) - d[i]).abs()
                <= self.inlier_threshold_ft
        });
        BatchedMmse::exact(self.inner).estimate(scratch)
    }
}

impl Estimator for ConsensusEstimator {
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        if refs.len() < self.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: refs.len(),
                need: self.min_references(),
            });
        }
        if refs.len() == 3 {
            return self.inner.estimate(refs);
        }
        let mut best_inliers: Vec<LocationReference> = Vec::new();
        for iter in 0..self.iterations {
            let idx = self.sample_triple(refs.len(), iter);
            let subset = [refs[idx[0]], refs[idx[1]], refs[idx[2]]];
            let Ok(candidate) = self.inner.estimate(&subset) else {
                continue; // collinear minimal sample
            };
            let inliers: Vec<LocationReference> = refs
                .iter()
                .copied()
                .filter(|r| r.residual_at(candidate.position).abs() <= self.inlier_threshold_ft)
                .collect();
            if inliers.len() > best_inliers.len() {
                best_inliers = inliers;
            }
        }
        if best_inliers.len() < self.min_references() {
            return Err(EstimateError::DegenerateGeometry);
        }
        self.inner.estimate(&best_inliers)
    }

    fn min_references(&self) -> usize {
        self.inner.min_references()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secloc_geometry::Point2;

    fn exact_refs(truth: Point2, anchors: &[(f64, f64)]) -> Vec<LocationReference> {
        anchors
            .iter()
            .map(|&(x, y)| {
                let a = Point2::new(x, y);
                LocationReference::new(a, a.distance(truth))
            })
            .collect()
    }

    fn square_refs(truth: Point2) -> Vec<LocationReference> {
        exact_refs(
            truth,
            &[
                (0.0, 0.0),
                (200.0, 0.0),
                (0.0, 200.0),
                (200.0, 200.0),
                (100.0, 30.0),
                (30.0, 170.0),
            ],
        )
    }

    #[test]
    fn residual_filter_matches_mmse_on_clean_data() {
        let truth = Point2::new(80.0, 120.0);
        let refs = square_refs(truth);
        let plain = MmseEstimator::default().estimate(&refs).unwrap();
        let robust = ResidualFilterEstimator::default().estimate(&refs).unwrap();
        assert!(plain.position.distance(robust.position) < 1e-9);
    }

    #[test]
    fn residual_filter_survives_one_liar() {
        let truth = Point2::new(80.0, 120.0);
        let mut refs = square_refs(truth);
        refs.push(LocationReference::new(Point2::new(900.0, 900.0), 10.0));
        let plain = MmseEstimator::default().estimate(&refs).unwrap();
        let robust = ResidualFilterEstimator::default().estimate(&refs).unwrap();
        assert!(
            plain.position.distance(truth) > 20.0,
            "attack should hurt MMSE"
        );
        assert!(
            robust.position.distance(truth) < 1.0,
            "filter should recover"
        );
    }

    #[test]
    fn residual_filter_survives_two_liars_among_six() {
        let truth = Point2::new(80.0, 120.0);
        let mut refs = square_refs(truth);
        refs.push(LocationReference::new(Point2::new(900.0, 900.0), 10.0));
        refs.push(LocationReference::new(Point2::new(900.0, 0.0), 25.0));
        let robust = ResidualFilterEstimator::default().estimate(&refs).unwrap();
        assert!(robust.position.distance(truth) < 5.0, "{}", robust.position);
    }

    #[test]
    fn consensus_survives_minority_poisoning() {
        let truth = Point2::new(80.0, 120.0);
        let mut refs = square_refs(truth);
        refs.push(LocationReference::new(Point2::new(900.0, 900.0), 10.0));
        refs.push(LocationReference::new(Point2::new(900.0, 0.0), 25.0));
        let est = ConsensusEstimator::default().estimate(&refs).unwrap();
        assert!(est.position.distance(truth) < 5.0, "{}", est.position);
    }

    #[test]
    fn consensus_fails_under_colluding_majority() {
        // 4 colluding liars consistent with a fake position vs 3 honest
        // references: the consensus picks the bigger (fake) story — the
        // fundamental limit that motivates network-level revocation.
        let truth = Point2::new(80.0, 120.0);
        let fake = Point2::new(700.0, 500.0);
        let mut refs = exact_refs(truth, &[(0.0, 0.0), (200.0, 0.0), (0.0, 200.0)]);
        refs.extend(exact_refs(
            fake,
            &[
                (600.0, 300.0),
                (800.0, 300.0),
                (600.0, 700.0),
                (850.0, 600.0),
            ],
        ));
        let est = ConsensusEstimator::default().estimate(&refs).unwrap();
        assert!(
            est.position.distance(fake) < 5.0,
            "expected capture by the colluding majority, got {}",
            est.position
        );
    }

    #[test]
    fn consensus_deterministic_per_seed() {
        let truth = Point2::new(80.0, 120.0);
        let mut refs = square_refs(truth);
        refs.push(LocationReference::new(Point2::new(900.0, 900.0), 10.0));
        let a = ConsensusEstimator::default().estimate(&refs).unwrap();
        let b = ConsensusEstimator::default().estimate(&refs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn both_enforce_min_references() {
        let refs = exact_refs(Point2::new(1.0, 1.0), &[(0.0, 0.0), (5.0, 0.0)]);
        assert!(matches!(
            ResidualFilterEstimator::default().estimate(&refs),
            Err(EstimateError::TooFewReferences { .. })
        ));
        assert!(matches!(
            ConsensusEstimator::default().estimate(&refs),
            Err(EstimateError::TooFewReferences { .. })
        ));
    }

    #[test]
    fn residual_filter_respects_min_floor() {
        // Even with an absurdly tight threshold it keeps min_references.
        let truth = Point2::new(50.0, 50.0);
        let refs = square_refs(truth);
        let tight = ResidualFilterEstimator {
            inlier_threshold_ft: 1e-12,
            ..Default::default()
        };
        let est = tight.estimate(&refs).unwrap();
        assert!(est.position.is_finite());
    }

    #[test]
    fn scratch_variants_match_vec_paths_bit_for_bit() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = crate::batch::MmseScratch::new();
        let filter = ResidualFilterEstimator::default();
        let consensus = ConsensusEstimator::default();
        for n in [3usize, 4, 6, 9, 14] {
            for trial in 0..40 {
                let truth = Point2::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0));
                let refs: Vec<LocationReference> = (0..n)
                    .map(|_| {
                        let a = Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                        // A mix of honest, noisy, and poisoned distances so
                        // both the filter and the consensus paths exercise
                        // their drop/keep logic.
                        let d = match trial % 3 {
                            0 => a.distance(truth),
                            1 => (a.distance(truth) + rng.gen_range(-8.0..8.0)).max(0.0),
                            _ => rng.gen_range(0.0..400.0),
                        };
                        LocationReference::new(a, d)
                    })
                    .collect();
                let assert_same =
                    |a: Result<Estimate, EstimateError>, b: Result<Estimate, EstimateError>| match (
                        a, b,
                    ) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
                            assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
                            assert_eq!(x.residual_rms.to_bits(), y.residual_rms.to_bits());
                        }
                        (x, y) => assert_eq!(x, y),
                    };
                assert_same(
                    filter.estimate(&refs),
                    filter.estimate_with(&refs, &mut scratch),
                );
                assert_same(
                    consensus.estimate(&refs),
                    consensus.estimate_with(&refs, &mut scratch),
                );
            }
        }
    }

    #[test]
    fn consensus_exactly_three_refs_degenerates_to_mmse() {
        let truth = Point2::new(10.0, 20.0);
        let refs = exact_refs(truth, &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]);
        let est = ConsensusEstimator::default().estimate(&refs).unwrap();
        assert!(est.position.distance(truth) < 1e-6);
    }
}
