//! Centroid localization.

use crate::{Estimate, EstimateError, Estimator, LocationReference};
use secloc_geometry::{Point2, Vector2};

/// The (weighted) centroid scheme of Bulusu, Heidemann & Estrin — the
/// paper's reference \[2\], "GPS-less low cost outdoor localization".
///
/// The node positions itself at the centroid of the beacon locations it can
/// hear, optionally weighting each beacon by `1 / (distance + 1)` so nearer
/// beacons count more. Coarse but nearly free, and its sensitivity to a
/// single lying beacon makes it a vivid demonstration workload for the
/// paper's detection suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CentroidEstimator {
    /// Weight anchors by proximity instead of uniformly (off by default).
    pub distance_weighted: bool,
}

impl Estimator for CentroidEstimator {
    fn estimate(&self, refs: &[LocationReference]) -> Result<Estimate, EstimateError> {
        if refs.len() < self.min_references() {
            return Err(EstimateError::TooFewReferences {
                got: refs.len(),
                need: self.min_references(),
            });
        }
        let mut acc = Vector2::ZERO;
        let mut total = 0.0f64;
        for r in refs {
            let w = if self.distance_weighted {
                1.0 / (r.distance() + 1.0)
            } else {
                1.0
            };
            acc += (r.anchor() - Point2::ORIGIN) * w;
            total += w;
        }
        let position = Point2::ORIGIN + acc / total;
        Ok(Estimate::at(position, refs))
    }

    fn min_references(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_centroid_of_square() {
        let refs: Vec<LocationReference> = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]
            .iter()
            .map(|&(x, y)| LocationReference::new(Point2::new(x, y), 7.0))
            .collect();
        let e = CentroidEstimator::default().estimate(&refs).unwrap();
        assert!(e.position.distance(Point2::new(5.0, 5.0)) < 1e-12);
    }

    #[test]
    fn single_reference_sits_on_anchor() {
        let refs = vec![LocationReference::new(Point2::new(3.0, 4.0), 2.0)];
        let e = CentroidEstimator::default().estimate(&refs).unwrap();
        assert_eq!(e.position, Point2::new(3.0, 4.0));
    }

    #[test]
    fn weighted_pulls_toward_near_beacon() {
        let refs = vec![
            LocationReference::new(Point2::new(0.0, 0.0), 1.0), // near
            LocationReference::new(Point2::new(100.0, 0.0), 99.0), // far
        ];
        let uniform = CentroidEstimator {
            distance_weighted: false,
        }
        .estimate(&refs)
        .unwrap();
        let weighted = CentroidEstimator {
            distance_weighted: true,
        }
        .estimate(&refs)
        .unwrap();
        assert!((uniform.position.x - 50.0).abs() < 1e-12);
        assert!(weighted.position.x < 10.0, "{}", weighted.position);
    }

    #[test]
    fn empty_refs_rejected() {
        assert_eq!(
            CentroidEstimator::default().estimate(&[]),
            Err(EstimateError::TooFewReferences { got: 0, need: 1 })
        );
    }

    #[test]
    fn lying_beacon_drags_centroid() {
        let honest: Vec<LocationReference> = [(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)]
            .iter()
            .map(|&(x, y)| LocationReference::new(Point2::new(x, y), 5.0))
            .collect();
        let h = CentroidEstimator::default().estimate(&honest).unwrap();
        let mut attacked = honest;
        attacked.push(LocationReference::new(Point2::new(1000.0, 1000.0), 5.0));
        let a = CentroidEstimator::default().estimate(&attacked).unwrap();
        assert!(a.position.distance(h.position) > 200.0);
    }
}
