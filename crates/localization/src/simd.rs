//! Hand-unrolled f64x4 lane kernels for the MMSE hot loops.
//!
//! The three inner loops that dominate batched solving — the linear-seed
//! normal-equation accumulation, the Gauss–Newton JᵀJ/Jᵀr accumulation,
//! and the residual-filter distance pass — are rewritten here over
//! [`MmseScratch`](crate::MmseScratch)'s structure-of-arrays rows in a
//! shape the autovectorizer keeps in SIMD registers: plain `[f64; 4]`
//! lane arrays and unrolled element-wise arithmetic, no `std::simd`
//! nightly features and no new dependencies.
//!
//! # Lane-reduction convention
//!
//! Each accumulation kernel has two reduction modes:
//!
//! - **Exact** (the default): a fused sequential loop — terms computed
//!   and folded row by row in ascending active order, exactly the
//!   operations (and operation order) of the scalar
//!   `BatchedMmse`/`MmseEstimator` chain, so the result is bit-identical
//!   (enforced by `to_bits` tests and the proptest sweep). The strict
//!   left-fold is a serial dependency chain, which caps how much the
//!   compiler may vectorize; on the small per-sensor reference sets the
//!   simulator solves (≤ a dozen rows), the fused loop measured *faster*
//!   than staging terms through lane arrays, so exact mode does not
//!   stage. Rows skipped by the scalar loop (the `dist < 1e-9`
//!   Gauss–Newton guard) are skipped under the identical predicate —
//!   they are *not* folded as `+0.0`, which would flip a `-0.0`
//!   accumulator to `+0.0`.
//! - **FastMath** (opt-in via [`BatchedMmse::fast_math`]
//!   (crate::BatchedMmse::fast_math)): per chunk of four rows, the
//!   expensive per-row *terms* (squares, square roots, quotients) are
//!   computed element-wise into `[f64; 4]` lane arrays — that part
//!   vectorizes — and fold into four independent partial accumulators,
//!   one per lane position; full chunks fold row `4k + j` into partial
//!   `j`, tail rows fold into partials `0..rem` in order, and the
//!   partials combine pairwise as `(p0 + p1) + (p2 + p3)`. This
//!   reassociates the sum — results are only tolerance-equal to scalar
//!   (see `fast_math_stays_within_tolerance`) — but breaks the serial
//!   dependency chain so the whole accumulation stays in vector
//!   registers.
//!
//! The worst-residual scan has no FastMath variant: its lane phase
//! computes distances (pure, order-free) and its reduction is a scan that
//! must preserve the scalar `max_by(total_cmp)` tie-break (last maximal
//! element wins), which is order-sensitive by definition.

const LANES: usize = 4;

/// Row addressing for the lane kernels.
///
/// The kernels are generic over *how* active rows map to SoA indices so
/// the unfiltered case — `MmseScratch` right after `load`, where the
/// active set is the identity — monomorphizes to contiguous slice loads
/// the autovectorizer turns into packed `sqrtpd`/`divpd`, while filtered
/// sets keep the indexed gather. Both instantiations perform the same
/// float operations in the same order; only addressing differs, so
/// bit-identity is preserved by construction (and checked in the tests
/// below).
pub(crate) trait RowIx: Copy {
    fn count(self) -> usize;
    fn row(self, k: usize) -> usize;
}

/// The identity mapping over rows `0..n`: contiguous SoA access.
#[derive(Clone, Copy)]
pub(crate) struct Dense(pub usize);

impl RowIx for Dense {
    #[inline(always)]
    fn count(self) -> usize {
        self.0
    }
    #[inline(always)]
    fn row(self, k: usize) -> usize {
        k
    }
}

impl RowIx for &[usize] {
    #[inline(always)]
    fn count(self) -> usize {
        self.len()
    }
    #[inline(always)]
    fn row(self, k: usize) -> usize {
        self[k]
    }
}

/// Accumulated linear-seed normal equations: `m` is the 2×2 Gram matrix,
/// `v` the right-hand side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SeedAcc {
    pub m00: f64,
    pub m01: f64,
    pub m11: f64,
    pub vx: f64,
    pub vy: f64,
}

/// Accumulated Gauss–Newton normal equations: `jtj` is JᵀJ, `jtr` is Jᵀr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GnAcc {
    pub jtj00: f64,
    pub jtj01: f64,
    pub jtj11: f64,
    pub jtrx: f64,
    pub jtry: f64,
}

/// Linear-seed accumulation over the active rows `rows` (all but the last
/// active row), differencing against the last active row's circle
/// equation at `(axl, ayl)` with distance `adl`.
#[inline]
pub(crate) fn seed_accumulate<R: RowIx>(
    ax: &[f64],
    ay: &[f64],
    d: &[f64],
    rows: R,
    axl: f64,
    ayl: f64,
    adl: f64,
    fast: bool,
) -> SeedAcc {
    // Row-independent part of the right-hand side, hoisted exactly as the
    // scalar loop leaves it: the scalar expression is
    //   adl² − dᵢ² + axᵢ² + ayᵢ² − axl² − ayl²
    // evaluated left to right, so the hoisted prefix is adl² and the
    // suffix subtractions stay per-row to preserve operation order.
    let adl2 = adl * adl;
    let mut acc = SeedAcc {
        m00: 0.0,
        m01: 0.0,
        m11: 0.0,
        vx: 0.0,
        vy: 0.0,
    };
    let n = rows.count();
    if !fast {
        // Exact mode: fused sequential left-fold, the scalar loop verbatim.
        for k in 0..n {
            let i = rows.row(k);
            let row_x = 2.0 * (ax[i] - axl);
            let row_y = 2.0 * (ay[i] - ayl);
            let rhs = adl2 - d[i] * d[i] + ax[i] * ax[i] + ay[i] * ay[i] - axl * axl - ayl * ayl;
            acc.m00 += row_x * row_x;
            acc.m01 += row_x * row_y;
            acc.m11 += row_y * row_y;
            acc.vx += row_x * rhs;
            acc.vy += row_y * rhs;
        }
        return acc;
    }
    let mut t00 = [0.0f64; LANES];
    let mut t01 = [0.0f64; LANES];
    let mut t11 = [0.0f64; LANES];
    let mut tvx = [0.0f64; LANES];
    let mut tvy = [0.0f64; LANES];
    let mut partial = [acc; LANES];
    let mut base = 0usize;
    while base + LANES <= n {
        for j in 0..LANES {
            let i = rows.row(base + j);
            let row_x = 2.0 * (ax[i] - axl);
            let row_y = 2.0 * (ay[i] - ayl);
            let rhs = adl2 - d[i] * d[i] + ax[i] * ax[i] + ay[i] * ay[i] - axl * axl - ayl * ayl;
            t00[j] = row_x * row_x;
            t01[j] = row_x * row_y;
            t11[j] = row_y * row_y;
            tvx[j] = row_x * rhs;
            tvy[j] = row_y * rhs;
        }
        for j in 0..LANES {
            partial[j].m00 += t00[j];
            partial[j].m01 += t01[j];
            partial[j].m11 += t11[j];
            partial[j].vx += tvx[j];
            partial[j].vy += tvy[j];
        }
        base += LANES;
    }
    for j in 0..(n - base) {
        let i = rows.row(base + j);
        let row_x = 2.0 * (ax[i] - axl);
        let row_y = 2.0 * (ay[i] - ayl);
        let rhs = adl2 - d[i] * d[i] + ax[i] * ax[i] + ay[i] * ay[i] - axl * axl - ayl * ayl;
        partial[j].m00 += row_x * row_x;
        partial[j].m01 += row_x * row_y;
        partial[j].m11 += row_y * row_y;
        partial[j].vx += row_x * rhs;
        partial[j].vy += row_y * rhs;
    }
    SeedAcc {
        m00: (partial[0].m00 + partial[1].m00) + (partial[2].m00 + partial[3].m00),
        m01: (partial[0].m01 + partial[1].m01) + (partial[2].m01 + partial[3].m01),
        m11: (partial[0].m11 + partial[1].m11) + (partial[2].m11 + partial[3].m11),
        vx: (partial[0].vx + partial[1].vx) + (partial[2].vx + partial[3].vx),
        vy: (partial[0].vy + partial[1].vy) + (partial[2].vy + partial[3].vy),
    }
}

/// Gauss–Newton design-matrix/residual accumulation over the active rows
/// at the current iterate `(px, py)`.
///
/// The scalar guard — rows whose anchor coincides with the iterate
/// (`dist < 1e-9`) contribute nothing — is reproduced as a conditional
/// fold under the identical predicate.
#[inline]
pub(crate) fn gn_accumulate<R: RowIx>(
    px: f64,
    py: f64,
    ax: &[f64],
    ay: &[f64],
    d: &[f64],
    rows: R,
    fast: bool,
) -> GnAcc {
    let mut acc = GnAcc {
        jtj00: 0.0,
        jtj01: 0.0,
        jtj11: 0.0,
        jtrx: 0.0,
        jtry: 0.0,
    };
    let n = rows.count();
    if !fast {
        // Exact mode: fused sequential left-fold, the scalar loop verbatim.
        for k in 0..n {
            let i = rows.row(k);
            let dx = px - ax[i];
            let dy = py - ay[i];
            let dist = (dx * dx + dy * dy).sqrt();
            if dist < 1e-9 {
                continue;
            }
            let (gx, gy) = (dx / dist, dy / dist);
            let res = dist - d[i];
            acc.jtj00 += gx * gx;
            acc.jtj01 += gx * gy;
            acc.jtj11 += gy * gy;
            acc.jtrx += gx * res;
            acc.jtry += gy * res;
        }
        return acc;
    }
    let mut dist = [0.0f64; LANES];
    let mut gx = [0.0f64; LANES];
    let mut gy = [0.0f64; LANES];
    let mut res = [0.0f64; LANES];
    let mut partial = [acc; LANES];
    let mut base = 0usize;
    while base + LANES <= n {
        for j in 0..LANES {
            let i = rows.row(base + j);
            let dx = px - ax[i];
            let dy = py - ay[i];
            dist[j] = (dx * dx + dy * dy).sqrt();
            // A zero distance yields NaN lanes here; they are discarded by
            // the fold guard below, never added.
            gx[j] = dx / dist[j];
            gy[j] = dy / dist[j];
            res[j] = dist[j] - d[i];
        }
        for j in 0..LANES {
            if dist[j] < 1e-9 {
                continue;
            }
            partial[j].jtj00 += gx[j] * gx[j];
            partial[j].jtj01 += gx[j] * gy[j];
            partial[j].jtj11 += gy[j] * gy[j];
            partial[j].jtrx += gx[j] * res[j];
            partial[j].jtry += gy[j] * res[j];
        }
        base += LANES;
    }
    for j in 0..(n - base) {
        let i = rows.row(base + j);
        let dx = px - ax[i];
        let dy = py - ay[i];
        let dist = (dx * dx + dy * dy).sqrt();
        if dist < 1e-9 {
            continue;
        }
        let (gx, gy) = (dx / dist, dy / dist);
        let res = dist - d[i];
        partial[j].jtj00 += gx * gx;
        partial[j].jtj01 += gx * gy;
        partial[j].jtj11 += gy * gy;
        partial[j].jtrx += gx * res;
        partial[j].jtry += gy * res;
    }
    GnAcc {
        jtj00: (partial[0].jtj00 + partial[1].jtj00) + (partial[2].jtj00 + partial[3].jtj00),
        jtj01: (partial[0].jtj01 + partial[1].jtj01) + (partial[2].jtj01 + partial[3].jtj01),
        jtj11: (partial[0].jtj11 + partial[1].jtj11) + (partial[2].jtj11 + partial[3].jtj11),
        jtrx: (partial[0].jtrx + partial[1].jtrx) + (partial[2].jtrx + partial[3].jtrx),
        jtry: (partial[0].jtry + partial[1].jtry) + (partial[2].jtry + partial[3].jtry),
    }
}

/// The residual-filter distance pass: position of the worst absolute
/// residual among the active rows, and its value.
///
/// Returns `(k, |r_k|)` where `k` indexes into `rows`, replicating
/// `Iterator::max_by(total_cmp)` exactly — on ties the **last** maximal
/// element wins — so the filter drops the same reference the Vec-backed
/// scan would. The distance computation is lane-unrolled; the selection
/// scan runs in ascending row order.
#[inline]
pub(crate) fn worst_abs_residual<R: RowIx>(
    px: f64,
    py: f64,
    ax: &[f64],
    ay: &[f64],
    d: &[f64],
    rows: R,
) -> (usize, f64) {
    let n = rows.count();
    debug_assert!(n > 0, "non-empty reference set");
    let mut r = [0.0f64; LANES];
    let mut best = f64::NEG_INFINITY;
    let mut best_pos = 0usize;
    let mut scan = |vals: &[f64], base: usize| {
        for (j, &v) in vals.iter().enumerate() {
            // `total_cmp != Less` keeps the last maximal element, matching
            // `max_by`; NEG_INFINITY seeds below every total-order value
            // except itself, and a first-row -inf residual is impossible
            // (residuals are absolute values or NaN, both ≥ -inf, and the
            // `!= Less` rule still replaces on the tie).
            if v.total_cmp(&best) != std::cmp::Ordering::Less {
                best = v;
                best_pos = base + j;
            }
        }
    };
    let mut base = 0usize;
    while base + LANES <= n {
        for j in 0..LANES {
            let i = rows.row(base + j);
            let dx = px - ax[i];
            let dy = py - ay[i];
            r[j] = ((dx * dx + dy * dy).sqrt() - d[i]).abs();
        }
        scan(&r, base);
        base += LANES;
    }
    let rem = n - base;
    for j in 0..rem {
        let i = rows.row(base + j);
        let dx = px - ax[i];
        let dy = py - ay[i];
        r[j] = ((dx * dx + dy * dy).sqrt() - d[i]).abs();
    }
    scan(&r[..rem], base);
    (best_pos, best)
}

/// Lane-unrolled inlier count over **all** loaded rows `0..n`: how many
/// references sit within `threshold` of the candidate position. A count
/// is order-free, so the lane version is exact by construction.
pub(crate) fn count_within(
    px: f64,
    py: f64,
    ax: &[f64],
    ay: &[f64],
    d: &[f64],
    n: usize,
    threshold: f64,
) -> usize {
    let mut count = 0usize;
    let mut lane = [false; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for j in 0..LANES {
            let dx = px - ax[i + j];
            let dy = py - ay[i + j];
            lane[j] = ((dx * dx + dy * dy).sqrt() - d[i + j]).abs() <= threshold;
        }
        count += lane.iter().filter(|&&b| b).count();
        i += LANES;
    }
    while i < n {
        let dx = px - ax[i];
        let dy = py - ay[i];
        if ((dx * dx + dy * dy).sqrt() - d[i]).abs() <= threshold {
            count += 1;
        }
        i += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rows_data(rng: &mut StdRng, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let ax: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let ay: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..300.0)).collect();
        (ax, ay, d)
    }

    /// The scalar reference loops, verbatim from `mmse.rs` shapes.
    fn seed_scalar(ax: &[f64], ay: &[f64], d: &[f64], rows: &[usize], l: (f64, f64, f64)) -> SeedAcc {
        let (axl, ayl, adl) = l;
        let (mut m00, mut m01, mut m11, mut vx, mut vy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for &i in rows {
            let row_x = 2.0 * (ax[i] - axl);
            let row_y = 2.0 * (ay[i] - ayl);
            let rhs =
                adl * adl - d[i] * d[i] + ax[i] * ax[i] + ay[i] * ay[i] - axl * axl - ayl * ayl;
            m00 += row_x * row_x;
            m01 += row_x * row_y;
            m11 += row_y * row_y;
            vx += row_x * rhs;
            vy += row_y * rhs;
        }
        SeedAcc { m00, m01, m11, vx, vy }
    }

    fn gn_scalar(px: f64, py: f64, ax: &[f64], ay: &[f64], d: &[f64], rows: &[usize]) -> GnAcc {
        let (mut jtj00, mut jtj01, mut jtj11, mut jtrx, mut jtry) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for &i in rows {
            let dx = px - ax[i];
            let dy = py - ay[i];
            let dist = (dx * dx + dy * dy).sqrt();
            if dist < 1e-9 {
                continue;
            }
            let (gx, gy) = (dx / dist, dy / dist);
            let res = dist - d[i];
            jtj00 += gx * gx;
            jtj01 += gx * gy;
            jtj11 += gy * gy;
            jtrx += gx * res;
            jtry += gy * res;
        }
        GnAcc { jtj00, jtj01, jtj11, jtrx, jtry }
    }

    fn assert_bits(a: f64, b: f64) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }

    #[test]
    fn exact_seed_matches_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..24 {
            let (ax, ay, d) = rows_data(&mut rng, n + 1);
            let rows: Vec<usize> = (0..n).collect();
            let l = (ax[n], ay[n], d[n]);
            let s = seed_scalar(&ax, &ay, &d, &rows, l);
            let k = seed_accumulate(&ax, &ay, &d, &rows[..], l.0, l.1, l.2, false);
            let dense = seed_accumulate(&ax, &ay, &d, Dense(n), l.0, l.1, l.2, false);
            assert_eq!(k, dense, "dense addressing diverged at n={n}");
            assert_bits(s.m00, k.m00);
            assert_bits(s.m01, k.m01);
            assert_bits(s.m11, k.m11);
            assert_bits(s.vx, k.vx);
            assert_bits(s.vy, k.vy);
        }
    }

    #[test]
    fn exact_gn_matches_scalar_including_skip_guard() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in 1..24 {
            let (mut ax, mut ay, d) = rows_data(&mut rng, n);
            let (px, py) = (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            if n > 2 {
                // Force the dist < 1e-9 skip guard on an interior row.
                ax[n / 2] = px;
                ay[n / 2] = py;
            }
            let rows: Vec<usize> = (0..n).collect();
            let s = gn_scalar(px, py, &ax, &ay, &d, &rows);
            let k = gn_accumulate(px, py, &ax, &ay, &d, &rows[..], false);
            let dense = gn_accumulate(px, py, &ax, &ay, &d, Dense(n), false);
            assert_eq!(k, dense, "dense addressing diverged at n={n}");
            assert_bits(s.jtj00, k.jtj00);
            assert_bits(s.jtj01, k.jtj01);
            assert_bits(s.jtj11, k.jtj11);
            assert_bits(s.jtrx, k.jtrx);
            assert_bits(s.jtry, k.jtry);
        }
    }

    #[test]
    fn skip_guard_preserves_negative_zero_accumulators() {
        // All rows skipped: accumulators must stay exactly +0.0 (their
        // initial value), and a fold of `+0.0` per skipped row would have
        // been indistinguishable here — so also check a single -0.0
        // contribution survives subsequent skipped rows.
        let ax = [5.0, 5.0];
        let ay = [5.0, 5.0];
        let d = [1.0, 1.0];
        let rows = [0usize, 1];
        let k = gn_accumulate(5.0, 5.0, &ax, &ay, &d, &rows[..], false);
        let s = gn_scalar(5.0, 5.0, &ax, &ay, &d, &rows);
        assert_bits(s.jtj00, k.jtj00);
        assert_bits(s.jtrx, k.jtrx);
    }

    #[test]
    fn worst_residual_matches_max_by_scan() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in 1..24 {
            let (ax, ay, d) = rows_data(&mut rng, n);
            let (px, py) = (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let rows: Vec<usize> = (0..n).collect();
            let expect = rows
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    let dx = px - ax[i];
                    let dy = py - ay[i];
                    (k, ((dx * dx + dy * dy).sqrt() - d[i]).abs())
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            let got = worst_abs_residual(px, py, &ax, &ay, &d, &rows[..]);
            assert_eq!(got, worst_abs_residual(px, py, &ax, &ay, &d, Dense(n)));
            assert_eq!(expect.0, got.0);
            assert_bits(expect.1, got.1);
        }
    }

    #[test]
    fn worst_residual_tie_break_keeps_last() {
        // Two identical anchors and distances: equal residuals; max_by
        // keeps the later element.
        let ax = [10.0, 10.0];
        let ay = [0.0, 0.0];
        let d = [3.0, 3.0];
        let rows = [0usize, 1];
        let (pos, _) = worst_abs_residual(0.0, 0.0, &ax, &ay, &d, &rows[..]);
        assert_eq!(pos, 1);
    }

    #[test]
    fn count_within_matches_scalar_filter() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in 0..24 {
            let (ax, ay, d) = rows_data(&mut rng, n);
            let (px, py) = (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let expect = (0..n)
                .filter(|&i| {
                    let dx = px - ax[i];
                    let dy = py - ay[i];
                    ((dx * dx + dy * dy).sqrt() - d[i]).abs() <= 20.0
                })
                .count();
            assert_eq!(expect, count_within(px, py, &ax, &ay, &d, n, 20.0));
        }
    }

    #[test]
    fn fast_mode_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 4..24 {
            let (ax, ay, d) = rows_data(&mut rng, n + 1);
            let rows: Vec<usize> = (0..n).collect();
            let l = (ax[n], ay[n], d[n]);
            let e = seed_accumulate(&ax, &ay, &d, &rows[..], l.0, l.1, l.2, false);
            let f = seed_accumulate(&ax, &ay, &d, &rows[..], l.0, l.1, l.2, true);
            assert!((e.m00 - f.m00).abs() <= 1e-9 * e.m00.abs().max(1.0));
            assert!((e.vx - f.vx).abs() <= 1e-9 * e.vx.abs().max(1.0));
            let (px, py) = (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let eg = gn_accumulate(px, py, &ax, &ay, &d, &rows[..], false);
            let fg = gn_accumulate(px, py, &ax, &ay, &d, &rows[..], true);
            assert!((eg.jtj00 - fg.jtj00).abs() <= 1e-12 * eg.jtj00.abs().max(1.0));
            assert!((eg.jtrx - fg.jtrx).abs() <= 1e-9 * eg.jtrx.abs().max(1.0));
        }
    }
}
