//! Geometric dilution of precision (GDOP).
//!
//! Bounded ranging error does not imply bounded *position* error: the
//! anchor geometry amplifies measurement noise by a factor computable from
//! the Jacobian of the range equations. This diagnostic explains (and lets
//! tests assert) where multilateration is trustworthy — e.g. why the Fig.
//! 12 simulation undershoots its theory at the field borders, and why the
//! bounded-noise localization property only holds for well-spread anchors.

use crate::LocationReference;
use secloc_geometry::Point2;

/// Horizontal dilution of precision at `position` for the given anchors:
/// `sqrt(trace((JᵀJ)⁻¹))` with `J` the unit-vector Jacobian of the range
/// model. Position error ≈ `HDOP × ranging error` for uncorrelated noise.
///
/// Returns `None` when fewer than two usable anchors exist or the
/// geometry is singular (collinear anchors / anchor coincident with the
/// position).
pub fn hdop(position: Point2, anchors: &[Point2]) -> Option<f64> {
    hdop_rows(position, anchors.iter().copied())
}

/// HDOP computed from a reference set (anchor positions only). Reads the
/// anchors straight off the references — no intermediate buffer.
pub fn hdop_of_references(position: Point2, refs: &[LocationReference]) -> Option<f64> {
    hdop_rows(position, refs.iter().map(|r| r.anchor()))
}

/// The shared accumulation behind [`hdop`] and [`hdop_of_references`]:
/// whichever container holds the anchors, the float operations (and hence
/// the bits) are the same.
pub(crate) fn hdop_rows(position: Point2, anchors: impl Iterator<Item = Point2>) -> Option<f64> {
    let (mut a, mut b, mut c) = (0.0f64, 0.0f64, 0.0f64); // JtJ = [a b; b c]
    let mut used = 0usize;
    for anchor in anchors {
        let diff = position - anchor;
        let norm = diff.norm();
        if norm < 1e-9 {
            continue;
        }
        let ux = diff.x / norm;
        let uy = diff.y / norm;
        a += ux * ux;
        b += ux * uy;
        c += uy * uy;
        used += 1;
    }
    if used < 2 {
        return None;
    }
    let det = a * c - b * b;
    if det.abs() < 1e-12 {
        return None;
    }
    // trace of inverse = (a + c) / det.
    let t = (a + c) / det;
    (t.is_finite() && t >= 0.0).then(|| t.sqrt())
}

/// Expected position-error bound: `HDOP × max ranging error`, when the
/// geometry is usable.
pub fn error_bound(position: Point2, anchors: &[Point2], max_ranging_error: f64) -> Option<f64> {
    hdop(position, anchors).map(|h| h * max_ranging_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_geometry_has_hdop_about_one() {
        // Four anchors at the cardinal points around the position: the
        // classic HDOP = 1 configuration.
        let p = Point2::new(0.0, 0.0);
        let anchors = [
            Point2::new(100.0, 0.0),
            Point2::new(-100.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(0.0, -100.0),
        ];
        let h = hdop(p, &anchors).unwrap();
        assert!((h - 1.0).abs() < 1e-9, "got {h}");
    }

    #[test]
    fn clustered_anchors_dilute_precision() {
        // All anchors in a narrow cone: cross-range is unobservable, HDOP
        // blows up.
        let p = Point2::new(0.0, 0.0);
        let spread = [
            Point2::new(100.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(-70.0, -70.0),
        ];
        let cone = [
            Point2::new(100.0, 0.0),
            Point2::new(100.0, 5.0),
            Point2::new(100.0, -5.0),
        ];
        let good = hdop(p, &spread).unwrap();
        let bad = hdop(p, &cone).unwrap();
        assert!(bad > good * 5.0, "spread {good}, cone {bad}");
    }

    #[test]
    fn collinear_anchors_singular() {
        let p = Point2::new(0.0, 50.0);
        let line = [
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(0.0, 200.0),
        ];
        assert_eq!(hdop(p, &line), None);
    }

    #[test]
    fn too_few_anchors() {
        let p = Point2::ORIGIN;
        assert_eq!(hdop(p, &[]), None);
        assert_eq!(hdop(p, &[Point2::new(10.0, 0.0)]), None);
        // Anchor exactly on the position is skipped.
        assert_eq!(hdop(p, &[p, Point2::new(10.0, 0.0)]), None);
    }

    #[test]
    fn border_positions_worse_than_center() {
        // The Fig. 12 border effect: anchors all on one side.
        let anchors = [
            Point2::new(100.0, 100.0),
            Point2::new(300.0, 150.0),
            Point2::new(200.0, 300.0),
            Point2::new(150.0, 200.0),
        ];
        let center = hdop(Point2::new(190.0, 190.0), &anchors).unwrap();
        let border = hdop(Point2::new(600.0, 600.0), &anchors).unwrap();
        assert!(border > center, "center {center}, border {border}");
    }

    #[test]
    fn error_bound_scales_linearly() {
        let p = Point2::ORIGIN;
        let anchors = [
            Point2::new(100.0, 0.0),
            Point2::new(-100.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(0.0, -100.0),
        ];
        let e10 = error_bound(p, &anchors, 10.0).unwrap();
        let e20 = error_bound(p, &anchors, 20.0).unwrap();
        assert!((e20 / e10 - 2.0).abs() < 1e-12);
        assert!((e10 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reference_wrapper_matches_anchor_form() {
        let p = Point2::new(5.0, 5.0);
        let anchors = [
            Point2::new(100.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(-50.0, -50.0),
        ];
        let refs: Vec<LocationReference> = anchors
            .iter()
            .map(|&a| LocationReference::new(a, a.distance(p)))
            .collect();
        assert_eq!(hdop(p, &anchors), hdop_of_references(p, &refs));
    }

    #[test]
    fn empirical_error_tracks_hdop() {
        // Monte-Carlo: MMSE error with bounded noise should scale with
        // HDOP across geometries.
        use crate::{Estimator, MmseEstimator};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let truth = Point2::new(0.0, 0.0);
        let geoms: Vec<Vec<Point2>> = vec![
            vec![
                Point2::new(120.0, 0.0),
                Point2::new(-120.0, 10.0),
                Point2::new(0.0, 120.0),
                Point2::new(10.0, -120.0),
            ],
            vec![
                Point2::new(120.0, 0.0),
                Point2::new(119.0, 8.0),
                Point2::new(119.0, -8.0),
                Point2::new(118.0, 12.0),
            ],
        ];
        let mut rng = StdRng::seed_from_u64(11);
        let mut results = Vec::new();
        for anchors in &geoms {
            let h = hdop(truth, anchors).unwrap();
            let mut total = 0.0;
            let trials = 300;
            for _ in 0..trials {
                let refs: Vec<LocationReference> = anchors
                    .iter()
                    .map(|&a| {
                        let d = (a.distance(truth) + rng.gen_range(-5.0..=5.0)).max(0.0);
                        LocationReference::new(a, d)
                    })
                    .collect();
                let est = MmseEstimator::default().estimate(&refs).unwrap();
                total += est.position.distance(truth);
            }
            results.push((h, total / trials as f64));
        }
        let (h_good, err_good) = results[0];
        let (h_bad, err_bad) = results[1];
        assert!(h_bad > h_good * 2.0);
        assert!(
            err_bad > err_good * 1.5,
            "HDOP {h_good}->{h_bad} but error {err_good}->{err_bad}"
        );
    }
}
