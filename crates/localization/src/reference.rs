//! Location references.

use secloc_geometry::Point2;
use std::fmt;

/// One location reference: a beacon's declared location together with the
/// distance measured from its beacon signal.
///
/// This is the unit of input to every estimator and the unit of data a
/// malicious beacon corrupts — either by declaring a false `anchor` or by
/// manipulating its signal so `distance` is wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationReference {
    anchor: Point2,
    distance: f64,
}

impl LocationReference {
    /// Creates a reference from a declared beacon location and a measured
    /// distance in feet.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is negative or not finite, or `anchor` is not
    /// finite.
    pub fn new(anchor: Point2, distance: f64) -> Self {
        assert!(anchor.is_finite(), "anchor must be finite, got {anchor}");
        assert!(
            distance.is_finite() && distance >= 0.0,
            "distance must be >= 0, got {distance}"
        );
        LocationReference { anchor, distance }
    }

    /// The beacon location declared in the beacon packet.
    pub fn anchor(&self) -> Point2 {
        self.anchor
    }

    /// The distance measured from the beacon signal, in feet.
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// The signed residual of this reference at a hypothesised position:
    /// `|p − anchor| − distance`. Zero when the hypothesis is perfectly
    /// consistent with the reference.
    pub fn residual_at(&self, p: Point2) -> f64 {
        p.distance(self.anchor) - self.distance
    }
}

impl fmt::Display for LocationReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ref{{{} @ {:.2}ft}}", self.anchor, self.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = LocationReference::new(Point2::new(1.0, 2.0), 5.0);
        assert_eq!(r.anchor(), Point2::new(1.0, 2.0));
        assert_eq!(r.distance(), 5.0);
    }

    #[test]
    fn residual_zero_on_circle() {
        let r = LocationReference::new(Point2::new(0.0, 0.0), 5.0);
        assert!(r.residual_at(Point2::new(3.0, 4.0)).abs() < 1e-12);
        assert!(r.residual_at(Point2::new(6.0, 8.0)) > 0.0); // outside
        assert!(r.residual_at(Point2::new(1.0, 1.0)) < 0.0); // inside
    }

    #[test]
    fn zero_distance_allowed() {
        let r = LocationReference::new(Point2::new(9.0, 9.0), 0.0);
        assert_eq!(r.residual_at(Point2::new(9.0, 9.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_distance_rejected() {
        LocationReference::new(Point2::ORIGIN, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_anchor_rejected() {
        LocationReference::new(Point2::new(f64::NAN, 0.0), 1.0);
    }

    #[test]
    fn display() {
        let r = LocationReference::new(Point2::new(1.0, 2.0), 3.0);
        assert_eq!(format!("{r}"), "ref{(1.00, 2.00) @ 3.00ft}");
    }
}
