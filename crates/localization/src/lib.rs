//! Beacon-based localization estimators.
//!
//! Stage 2 of location discovery (paper §1): once a sensor holds enough
//! *location references* — `(beacon location, measured distance)` pairs —
//! it solves for its own position. The paper's detection techniques protect
//! whichever estimator is in use; this crate provides the standard ones so
//! end-to-end experiments can quantify the damage malicious beacons do and
//! the benefit of revoking them:
//!
//! - [`MmseEstimator`] — minimum-mean-square-error multilateration
//!   (linearised least squares seeded, Gauss–Newton refined), the "typical
//!   approach ... finding a mathematical solution that satisfies these
//!   constraints with minimum estimation error";
//! - [`MinMaxEstimator`] — the bounding-box method of Savvides et al.;
//! - [`CentroidEstimator`] — the coarse-grained centroid scheme of Bulusu,
//!   Heidemann & Estrin (its ref \[2\]);
//! - [`iterative`] — iterative multilateration in which localized nodes are
//!   promoted to beacons (§2.3's accumulating-error discussion).
//!
//! # Examples
//!
//! ```
//! use secloc_geometry::Point2;
//! use secloc_localization::{Estimator, LocationReference, MmseEstimator};
//!
//! let truth = Point2::new(40.0, 60.0);
//! let refs: Vec<LocationReference> = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]
//!     .iter()
//!     .map(|&(x, y)| {
//!         let anchor = Point2::new(x, y);
//!         LocationReference::new(anchor, anchor.distance(truth))
//!     })
//!     .collect();
//! let est = MmseEstimator::default().estimate(&refs)?;
//! assert!(est.position.distance(truth) < 1e-6);
//! # Ok::<(), secloc_localization::EstimateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod centroid;
pub mod dvhop;
mod estimator;
pub mod gdop;
pub mod iterative;
mod minmax;
mod mmse;
mod reference;
mod robust;
pub(crate) mod simd;

pub use batch::{BatchedMmse, MmseScratch};
pub use centroid::CentroidEstimator;
pub use dvhop::DvHop;
pub use estimator::{Estimate, EstimateError, Estimator};
pub use minmax::MinMaxEstimator;
pub use mmse::MmseEstimator;
pub use reference::LocationReference;
pub use robust::{ConsensusEstimator, ResidualFilterEstimator};
