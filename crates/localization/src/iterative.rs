//! Iterative multilateration with beacon promotion.
//!
//! "In some cases, a non-beacon node may become a beacon node to supply
//! location references once it discovers its own location. Localization
//! error may accumulate when more and more non-beacon nodes turn into
//! beacon nodes." (paper §2.3). This module implements that mode so the
//! accumulation effect — and the continued applicability of the consistency
//! constraints the detector relies on — can be measured.

use crate::{Estimate, Estimator, LocationReference, MmseEstimator};
use secloc_geometry::Point2;

/// Parameters of an iterative localization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeConfig {
    /// Radio range: only anchors within this distance supply references.
    pub range_ft: f64,
    /// References required before a node attempts to localize.
    pub min_references: usize,
    /// Maximum promotion waves.
    pub max_rounds: usize,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            range_ft: 150.0,
            min_references: 3,
            max_rounds: 16,
        }
    }
}

/// Result of a network-wide iterative localization pass.
#[derive(Debug, Clone)]
pub struct IterativeOutcome {
    /// Per-unknown estimate (`None` when the node never localized), indexed
    /// like the `unknowns` input.
    pub estimates: Vec<Option<Estimate>>,
    /// The wave in which each node localized (0-based), `None` if never.
    pub wave: Vec<Option<usize>>,
    /// Number of waves executed.
    pub rounds: usize,
}

impl IterativeOutcome {
    /// Number of nodes that obtained a position.
    pub fn localized_count(&self) -> usize {
        self.estimates.iter().flatten().count()
    }

    /// Mean localization error against the true positions, over localized
    /// nodes only. Returns `None` when nothing localized.
    pub fn mean_error(&self, truths: &[Point2]) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (est, truth) in self.estimates.iter().zip(truths) {
            if let Some(e) = est {
                sum += e.position.distance(*truth);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean error restricted to nodes localized in `wave`.
    pub fn mean_error_in_wave(&self, truths: &[Point2], wave: usize) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((est, w), truth) in self.estimates.iter().zip(&self.wave).zip(truths) {
            if *w == Some(wave) {
                if let Some(e) = est {
                    sum += e.position.distance(*truth);
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

/// Runs iterative multilateration over a static network.
///
/// `anchors` are true beacon nodes (location known exactly); `unknowns` are
/// the true positions of non-beacon nodes, used only to derive true
/// distances. `measure` maps a true distance to a measured one (plug in a
/// [`secloc_radio`-style] ranging model or the identity for noiseless runs).
///
/// Nodes that gather at least `config.min_references` references from
/// in-range anchors (original or promoted) estimate their position with
/// [`MmseEstimator`]; successfully localized nodes are *promoted* and serve
/// their **estimated** position to later waves, so measurement error
/// compounds exactly as §2.3 warns.
///
/// [`secloc_radio`-style]: crate
pub fn localize_network<F>(
    anchors: &[Point2],
    unknowns: &[Point2],
    config: &IterativeConfig,
    mut measure: F,
) -> IterativeOutcome
where
    F: FnMut(f64) -> f64,
{
    let estimator = MmseEstimator::default();
    let mut estimates: Vec<Option<Estimate>> = vec![None; unknowns.len()];
    let mut wave_of: Vec<Option<usize>> = vec![None; unknowns.len()];
    let mut rounds = 0usize;

    for round in 0..config.max_rounds {
        let mut promoted_this_round = Vec::new();
        for (i, &truth) in unknowns.iter().enumerate() {
            if estimates[i].is_some() {
                continue;
            }
            let mut refs = Vec::new();
            for &a in anchors {
                let d = truth.distance(a);
                if d <= config.range_ft {
                    refs.push(LocationReference::new(a, measure(d).max(0.0)));
                }
            }
            for (j, est) in estimates.iter().enumerate() {
                if let Some(e) = est {
                    let d = truth.distance(unknowns[j]);
                    if d <= config.range_ft {
                        refs.push(LocationReference::new(e.position, measure(d).max(0.0)));
                    }
                }
            }
            if refs.len() >= config.min_references {
                if let Ok(e) = estimator.estimate(&refs) {
                    promoted_this_round.push((i, e));
                }
            }
        }
        if promoted_this_round.is_empty() {
            break;
        }
        rounds = round + 1;
        for (i, e) in promoted_this_round {
            estimates[i] = Some(e);
            wave_of[i] = Some(round);
        }
    }

    IterativeOutcome {
        estimates,
        wave: wave_of,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dense_anchors_localize_everyone_in_one_wave() {
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(100.0, 100.0),
        ];
        let unknowns = vec![Point2::new(30.0, 40.0), Point2::new(70.0, 60.0)];
        let cfg = IterativeConfig {
            range_ft: 200.0,
            ..Default::default()
        };
        let out = localize_network(&anchors, &unknowns, &cfg, |d| d);
        assert_eq!(out.localized_count(), 2);
        assert_eq!(out.rounds, 1);
        assert!(out.mean_error(&unknowns).unwrap() < 1e-6);
        assert_eq!(out.wave, vec![Some(0), Some(0)]);
    }

    #[test]
    fn chain_localizes_in_waves() {
        // Anchors cluster on the left; a chain of unknowns extends right,
        // each only reachable once its left neighbourhood has localized.
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(60.0, 0.0),
            Point2::new(30.0, 50.0),
            Point2::new(30.0, -50.0),
        ];
        let unknowns = vec![
            Point2::new(80.0, 10.0),
            Point2::new(85.0, -15.0),
            Point2::new(95.0, 35.0),
            Point2::new(170.0, 5.0), // reachable only via promoted nodes
        ];
        let cfg = IterativeConfig {
            range_ft: 100.0,
            min_references: 3,
            max_rounds: 8,
        };
        let out = localize_network(&anchors, &unknowns, &cfg, |d| d);
        assert_eq!(out.localized_count(), 4);
        assert!(
            out.rounds >= 2,
            "expected multiple waves, got {}",
            out.rounds
        );
        assert!(out.wave[3] > out.wave[0]);
        assert!(out.mean_error(&unknowns).unwrap() < 1e-4);
    }

    #[test]
    fn isolated_node_never_localizes() {
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
        ];
        let unknowns = vec![Point2::new(5.0, 5.0), Point2::new(500.0, 500.0)];
        let cfg = IterativeConfig {
            range_ft: 50.0,
            ..Default::default()
        };
        let out = localize_network(&anchors, &unknowns, &cfg, |d| d);
        assert_eq!(out.localized_count(), 1);
        assert_eq!(out.estimates[1], None);
        assert_eq!(out.wave[1], None);
    }

    #[test]
    fn error_accumulates_across_waves_under_noise() {
        // Build a long corridor: anchors at the left end only.
        let anchors = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 80.0),
            Point2::new(40.0, 40.0),
            Point2::new(20.0, 10.0),
        ];
        // Unknowns every 50 ft down the corridor, with side nodes so each
        // wave has enough geometry.
        let mut unknowns = Vec::new();
        for k in 1..=8 {
            let x = 40.0 + 45.0 * k as f64;
            unknowns.push(Point2::new(x, 20.0));
            unknowns.push(Point2::new(x, 60.0));
            unknowns.push(Point2::new(x - 20.0, 40.0));
        }
        let cfg = IterativeConfig {
            range_ft: 110.0,
            min_references: 3,
            max_rounds: 30,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let out = localize_network(&anchors, &unknowns, &cfg, |d| {
            (d + rng.gen_range(-3.0..=3.0)).max(0.0)
        });
        assert!(out.localized_count() > unknowns.len() / 2);
        let early = out
            .mean_error_in_wave(&unknowns, 0)
            .expect("wave 0 localized someone");
        let last_wave = (0..out.rounds)
            .rev()
            .find(|&w| out.mean_error_in_wave(&unknowns, w).is_some() && w > 1);
        if let Some(w) = last_wave {
            let late = out.mean_error_in_wave(&unknowns, w).unwrap();
            assert!(
                late > early,
                "expected error accumulation: wave0 {early:.2} vs wave{w} {late:.2}"
            );
        }
    }

    #[test]
    fn no_anchors_no_progress() {
        let out = localize_network(
            &[],
            &[Point2::new(1.0, 1.0)],
            &IterativeConfig::default(),
            |d| d,
        );
        assert_eq!(out.localized_count(), 0);
        assert_eq!(out.rounds, 0);
        assert!(out.mean_error(&[Point2::new(1.0, 1.0)]).is_none());
    }
}
