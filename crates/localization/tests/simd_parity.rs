//! Property-based bit-identity sweep for the lane-kernel solve chain.
//!
//! The generated reference sets deliberately include the degenerate
//! shapes the scalar chain special-cases — collinear anchors, duplicate
//! beacon positions, fewer than three active rows, and huge lie offsets —
//! and assert that the lane-kernel `BatchedMmse` (and the scratch-backed
//! robust estimators built on it) return *bit-for-bit* the scalar
//! results, errors included.

use proptest::prelude::*;
use secloc_geometry::Point2;
use secloc_localization::{
    BatchedMmse, ConsensusEstimator, Estimate, EstimateError, Estimator, LocationReference,
    MmseEstimator, MmseScratch, ResidualFilterEstimator,
};

/// One reference whose shape is drawn from the degenerate zoo: a free
/// anchor, an anchor snapped onto a shared line (collinear pressure), a
/// duplicate of the first anchor, or a liar with a huge offset distance.
fn reference() -> impl Strategy<Value = (u8, f64, f64, f64)> {
    (0u8..4, 0.0..1000.0f64, 0.0..1000.0f64, 0.0..400.0f64)
}

fn materialize(shapes: &[(u8, f64, f64, f64)]) -> Vec<LocationReference> {
    shapes
        .iter()
        .map(|&(kind, x, y, d)| match kind {
            // Collinear pressure: anchors on the y = x diagonal.
            1 => LocationReference::new(Point2::new(x, x), d),
            // Duplicate position of the first anchor (distances differ).
            2 => {
                let (_, fx, fy, _) = shapes[0];
                LocationReference::new(Point2::new(fx, fy), d)
            }
            // Huge lie offset: distance wildly inconsistent with geometry.
            3 => LocationReference::new(Point2::new(x, y), d + 10_000.0),
            _ => LocationReference::new(Point2::new(x, y), d),
        })
        .collect()
}

fn assert_bits(a: &Result<Estimate, EstimateError>, b: &Result<Estimate, EstimateError>) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.position.x.to_bits(), y.position.x.to_bits());
            assert_eq!(x.position.y.to_bits(), y.position.y.to_bits());
            assert_eq!(x.residual_rms.to_bits(), y.residual_rms.to_bits());
        }
        (x, y) => assert_eq!(x, y),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Full active set, including sets below the 3-reference floor.
    #[test]
    fn batched_matches_scalar_bit_for_bit(
        shapes in proptest::collection::vec(reference(), 1..16),
    ) {
        let refs = materialize(&shapes);
        let mut s = MmseScratch::with_capacity(refs.len());
        s.load(&refs);
        assert_bits(
            &MmseEstimator::default().estimate(&refs),
            &BatchedMmse::default().estimate(&s),
        );
    }

    /// Filtered subsets: the scratch's index-selected solve must match a
    /// materialized subset solve, down to <3-row error cases.
    #[test]
    fn filtered_subset_matches_materialized(
        shapes in proptest::collection::vec(reference(), 1..16),
        mask in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let refs = materialize(&shapes);
        let subset: Vec<LocationReference> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .map(|(_, r)| *r)
            .collect();
        let mut s = MmseScratch::new();
        s.load(&refs);
        s.retain(|i| mask[i]);
        assert_bits(
            &MmseEstimator::default().estimate(&subset),
            &BatchedMmse::default().estimate(&s),
        );
    }

    /// The robust chains (residual filter, consensus) on top of the lane
    /// kernels still match their Vec-backed counterparts exactly.
    #[test]
    fn robust_chains_match_vec_paths(
        shapes in proptest::collection::vec(reference(), 3..14),
    ) {
        let refs = materialize(&shapes);
        let mut s = MmseScratch::new();
        let filter = ResidualFilterEstimator::default();
        assert_bits(&filter.estimate(&refs), &filter.estimate_with(&refs, &mut s));
        let consensus = ConsensusEstimator::default();
        assert_bits(
            &consensus.estimate(&refs),
            &consensus.estimate_with(&refs, &mut s),
        );
    }

    /// FastMath is *not* bit-identical, but must stay within solver
    /// tolerance of the exact chain on well-conditioned geometry.
    #[test]
    fn fast_math_stays_within_tolerance(
        truth in (100.0..900.0f64, 100.0..900.0f64),
        anchors in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 4..12),
    ) {
        let t = Point2::new(truth.0, truth.1);
        let refs: Vec<LocationReference> = anchors
            .iter()
            .map(|&(x, y)| {
                let a = Point2::new(x, y);
                LocationReference::new(a, a.distance(t))
            })
            .collect();
        // Require a well-spread triangle so both modes take the same
        // branch through the degenerate-geometry guards.
        prop_assume!(anchors.iter().enumerate().any(|(i, &a)| {
            anchors.iter().enumerate().any(|(j, &b)| {
                i < j && anchors.iter().skip(j + 1).any(|&c| {
                    let abx = b.0 - a.0;
                    let aby = b.1 - a.1;
                    let acx = c.0 - a.0;
                    let acy = c.1 - a.1;
                    (abx * acy - aby * acx).abs() > 10_000.0
                })
            })
        }));
        let mut s = MmseScratch::new();
        s.load(&refs);
        let exact = BatchedMmse::default().estimate(&s);
        let fast = BatchedMmse {
            fast_math: true,
            ..Default::default()
        }
        .estimate(&s);
        match (exact, fast) {
            (Ok(e), Ok(f)) => {
                prop_assert!(
                    e.position.distance(f.position) < 1e-5,
                    "exact {} vs fast {}",
                    e.position,
                    f.position
                );
            }
            (e, f) => prop_assert_eq!(e, f),
        }
    }
}
