//! Property-based tests for localization estimators.

use proptest::prelude::*;
use secloc_geometry::Point2;
use secloc_localization::{
    CentroidEstimator, Estimator, LocationReference, MinMaxEstimator, MmseEstimator,
};

/// Non-degenerate anchor triangles plus a truth point inside a 1000ft field.
fn scenario() -> impl Strategy<Value = (Point2, Vec<Point2>)> {
    (
        (0.0..1000.0f64, 0.0..1000.0f64),
        proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 3..8),
    )
        .prop_map(|(truth, anchors)| {
            (
                Point2::new(truth.0, truth.1),
                anchors
                    .into_iter()
                    .map(|(x, y)| Point2::new(x, y))
                    .collect::<Vec<Point2>>(),
            )
        })
        .prop_filter("anchors must span area", |(_, anchors)| {
            // Require some triangle with non-trivial area.
            anchors.iter().enumerate().any(|(i, &a)| {
                anchors.iter().enumerate().any(|(j, &b)| {
                    i < j
                        && anchors
                            .iter()
                            .skip(j + 1)
                            .any(|&c| ((b - a).cross(c - a)).abs() > 1000.0)
                })
            })
        })
}

fn exact_refs(truth: Point2, anchors: &[Point2]) -> Vec<LocationReference> {
    anchors
        .iter()
        .map(|&a| LocationReference::new(a, a.distance(truth)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mmse_recovers_exact_positions((truth, anchors) in scenario()) {
        let refs = exact_refs(truth, &anchors);
        let est = MmseEstimator::default().estimate(&refs).unwrap();
        prop_assert!(
            est.position.distance(truth) < 1e-3,
            "truth {truth}, got {}", est.position
        );
        prop_assert!(est.residual_rms < 1e-3);
    }

    #[test]
    fn mmse_bounded_error_under_bounded_noise(
        (truth, anchors) in scenario(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        // The bounded-error claim needs non-degenerate geometry: some
        // anchor triangle with real area, and the truth interpolated (not
        // wildly extrapolated). Outside these conditions dilution of
        // precision can amplify eps arbitrarily — that is physics, not a
        // bug, and the sim's field clamp handles it there.
        let good_triangle = anchors.iter().enumerate().any(|(i, &a)| {
            anchors.iter().enumerate().any(|(j, &b)| {
                i < j && anchors.iter().skip(j + 1).any(|&c| ((b - a).cross(c - a)).abs() > 40_000.0)
            })
        });
        prop_assume!(good_triangle);
        let min_x = anchors.iter().map(|a| a.x).fold(f64::INFINITY, f64::min);
        let max_x = anchors.iter().map(|a| a.x).fold(f64::NEG_INFINITY, f64::max);
        let min_y = anchors.iter().map(|a| a.y).fold(f64::INFINITY, f64::min);
        let max_y = anchors.iter().map(|a| a.y).fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(
            truth.x >= min_x - 100.0 && truth.x <= max_x + 100.0
                && truth.y >= min_y - 100.0 && truth.y <= max_y + 100.0
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let eps = 10.0;
        let refs: Vec<LocationReference> = anchors
            .iter()
            .map(|&a| {
                let noisy = (a.distance(truth) + rng.gen_range(-eps..=eps)).max(0.0);
                LocationReference::new(a, noisy)
            })
            .collect();
        let est = MmseEstimator::default().estimate(&refs).unwrap();
        prop_assert!(
            est.position.distance(truth) < 60.0 * eps,
            "error {} with {} anchors", est.position.distance(truth), anchors.len()
        );
    }

    #[test]
    fn minmax_contains_truth_for_exact_refs((truth, anchors) in scenario()) {
        let refs = exact_refs(truth, &anchors);
        let est = MinMaxEstimator.estimate(&refs).unwrap();
        // The intersection box contains the truth, so the centre cannot be
        // farther than half the biggest box diagonal (bounded by min dist).
        let tightest = refs
            .iter()
            .map(|r| r.distance())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(est.position.distance(truth) <= tightest * 2.0_f64.sqrt() + 1e-9);
    }

    #[test]
    fn centroid_lies_in_convex_hull_bbox((truth, anchors) in scenario()) {
        let refs = exact_refs(truth, &anchors);
        let est = CentroidEstimator::default().estimate(&refs).unwrap();
        let min_x = anchors.iter().map(|a| a.x).fold(f64::INFINITY, f64::min);
        let max_x = anchors.iter().map(|a| a.x).fold(f64::NEG_INFINITY, f64::max);
        let min_y = anchors.iter().map(|a| a.y).fold(f64::INFINITY, f64::min);
        let max_y = anchors.iter().map(|a| a.y).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est.position.x >= min_x - 1e-9 && est.position.x <= max_x + 1e-9);
        prop_assert!(est.position.y >= min_y - 1e-9 && est.position.y <= max_y + 1e-9);
    }

    #[test]
    fn estimators_agree_on_min_reference_enforcement(n in 0usize..3) {
        let refs: Vec<LocationReference> = (0..n)
            .map(|i| LocationReference::new(Point2::new(i as f64 * 13.0, 5.0), 10.0))
            .collect();
        let mmse = MmseEstimator::default();
        if n < mmse.min_references() {
            prop_assert!(mmse.estimate(&refs).is_err());
        }
        if n < MinMaxEstimator.min_references() {
            prop_assert!(MinMaxEstimator.estimate(&refs).is_err());
        }
        if n < CentroidEstimator::default().min_references() {
            prop_assert!(CentroidEstimator::default().estimate(&refs).is_err());
        }
    }
}
