//! # secloc — secure location discovery for wireless sensor networks
//!
//! A production-quality Rust reproduction of **Liu, Ning & Du,
//! "Detecting Malicious Beacon Nodes for Secure Location Discovery in
//! Wireless Sensor Networks" (ICDCS 2005)**, including every substrate the
//! paper assumes: key predistribution, cycle-accurate radio timing, RSSI
//! ranging, localization estimators, attacker models, the detection and
//! revocation suite itself, its closed-form analysis, and a seeded
//! whole-network simulator.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`obs`] | `secloc-obs` | metrics registry, spans, event sinks, report writers |
//! | [`geometry`] | `secloc-geometry` | points, fields, deployments, spatial index |
//! | [`crypto`] | `secloc-crypto` | PRF, MACs, node IDs, key predistribution |
//! | [`radio`] | `secloc-radio` | cycle timing, RTT model, ranging, frames, event queue |
//! | [`localization`] | `secloc-localization` | MMSE / min-max / centroid estimators |
//! | [`attack`] | `secloc-attack` | compromised beacons, wormholes, replayers, collusion |
//! | [`core`] | `secloc-core` | **the paper's contribution**: detector, replay filters, revocation |
//! | [`analysis`] | `secloc-analysis` | closed-form `P_r`, `P_d`, `N′`, `N_f`, `P_o`, empirical ROC curves |
//! | [`sim`] | `secloc-sim` | end-to-end §4 simulation and metrics |
//! | [`faults`] | `secloc-faults` | fault injection: burst loss, regional noise, clock drift, churn |
//!
//! ## Quickstart
//!
//! Detect a lying beacon and revoke it:
//!
//! ```
//! use secloc::core::{Alert, BaseStation, DetectionPipeline, Observation, RevocationConfig};
//! use secloc::crypto::NodeId;
//! use secloc::geometry::Point2;
//! use secloc::radio::Cycles;
//!
//! let pipeline = DetectionPipeline::paper_default();
//! let observation = Observation {
//!     detector_position: Point2::new(0.0, 0.0),
//!     declared_position: Point2::new(700.0, 0.0), // the lie
//!     measured_distance_ft: 120.0,                // the physics
//!     rtt: Cycles::new(6_700),
//!     wormhole_detector_fired: false,
//! };
//! assert!(pipeline.evaluate(&observation).raises_alert());
//!
//! let mut station = BaseStation::new(RevocationConfig::paper_default());
//! for detector in [1, 2, 3] {
//!     station.process(Alert::new(NodeId(detector), NodeId(99)));
//! }
//! assert!(station.is_revoked(NodeId(99)));
//! ```
//!
//! Run the paper's full simulation:
//!
//! ```no_run
//! use secloc::prelude::*;
//!
//! let outcome = Runner::new(SimConfig::paper_default(), 1)
//!     .run(RunOptions::new())
//!     .outcome;
//! println!(
//!     "detection rate {:.2}, false positives {:.2}, N' = {:.2}",
//!     outcome.detection_rate(),
//!     outcome.false_positive_rate(),
//!     outcome.affected_after,
//! );
//! ```
//!
//! Degrade the run with a [`faults::FaultPlan`] (burst loss, regional
//! ranging noise, clock drift, beacon churn) via
//! `RunOptions::new().faults(plan)` — an empty plan is guaranteed
//! bit-identical to a fault-free run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use secloc_analysis as analysis;
pub use secloc_attack as attack;
pub use secloc_core as core;
pub use secloc_crypto as crypto;
pub use secloc_faults as faults;
pub use secloc_geometry as geometry;
pub use secloc_localization as localization;
pub use secloc_obs as obs;
pub use secloc_radio as radio;
pub use secloc_sim as sim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use secloc_analysis::{
        acceptance_probability, affected_nonbeacons, detection_rate_pr, revocation_rate_pd,
        NetworkPopulation,
    };
    pub use secloc_attack::{Action, BeaconStrategy, CompromisedBeacon, Wormhole};
    pub use secloc_core::{
        Alert, BaseStation, DetectionOutcome, DetectionPipeline, GeographicLeash, Observation,
        ProtocolAction, ProtocolEvent, RevocationConfig, RevocationMachine, RttFilter,
        SignalDetector, TemporalLeash, WormholeDetector, WormholeFilter,
    };
    pub use secloc_crypto::{IdSpace, Key, Mac, NodeId, PairwiseKeyStore};
    pub use secloc_faults::{BurstLossSpec, ChurnSpec, FaultPlan, NoiseRegion};
    pub use secloc_geometry::{Field, Point2, Vector2};
    pub use secloc_localization::{Estimator, LocationReference, MmseEstimator};
    pub use secloc_obs::Obs;
    pub use secloc_radio::{timing::RttModel, Cycles};
    pub use secloc_sim::{RunOptions, RunOutput, Runner, SimConfig, SimConfigBuilder, SimOutcome};
}
