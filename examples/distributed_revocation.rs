//! Beyond the paper: revocation without (and after) the base station.
//!
//! Two extensions built on the paper's machinery:
//!
//! 1. **Distributed revocation** (the paper's §6 future-work item): alerts
//!    gossip through the beacon overlay and every node keeps a local
//!    blacklist with the §3 counters — no base station involved.
//! 2. **μTESLA-authenticated revocation broadcast** (the paper's SPINS
//!    citation): when a base station *is* used, its revocation messages
//!    must be broadcast-authenticated or an attacker could forge
//!    "revoke that honest beacon" messages.
//!
//! Run with: `cargo run --release --example distributed_revocation`

use secloc::crypto::mutesla::{MuTeslaBroadcaster, MuTeslaReceiver};
use secloc::prelude::*;
use secloc::sim::distributed::{run_distributed, DistributedConfig};
use secloc::sim::Deployment;

fn main() {
    distributed_scheme();
    mutesla_broadcast();
}

fn distributed_scheme() {
    println!("== distributed revocation (no base station) ==");
    let config = SimConfig {
        attacker_p: 0.4,
        wormhole: None,
        ..SimConfig::paper_default()
    };
    let deployment = Deployment::generate(config, 2005);
    println!(
        "{} nodes, {} beacons ({} malicious, P = 0.4)",
        deployment.config().nodes,
        deployment.config().beacons,
        deployment.config().malicious
    );
    println!(
        "{:>6} | {:>14} | {:>9} | {:>7} | {:>11}",
        "hops", "detection", "FP rate", "N'", "alert msgs"
    );
    for hops in [0, 1, 2, 3] {
        let out = run_distributed(
            &deployment,
            DistributedConfig {
                tau: 2,
                tau_prime: 2,
                gossip_hops: hops,
            },
            7,
        );
        println!(
            "{hops:>6} | {:>14.3} | {:>9.3} | {:>7.2} | {:>11}",
            out.neighbourhood_detection_rate,
            out.neighbourhood_false_positive_rate,
            out.affected_after,
            out.alert_transmissions,
        );
    }
    println!(
        "-> one gossip hop already matches the base station's coverage here;\n   \
         the price is the alert traffic column.\n"
    );
}

fn mutesla_broadcast() {
    println!("== muTESLA-authenticated revocation broadcast ==");
    // Offline: the base station builds a key chain; every sensor is
    // preloaded with the commitment.
    let base_station = MuTeslaBroadcaster::new(Key::from_u128(0x2005), 64, 2);
    let mut sensor = MuTeslaReceiver::new(base_station.commitment(), 2);

    // Interval 9: the base station broadcasts a revocation.
    let revocation = b"REVOKE beacon n7";
    let msg = base_station.broadcast(9, revocation);
    sensor.accept(&msg, 9).expect("fresh message accepted");
    println!("interval 9 : revocation broadcast buffered (unverifiable yet)");

    // An attacker who captured an *old* disclosed key tries to forge one.
    let old_key = base_station.disclose(5);
    let forged = secloc::crypto::mutesla::BroadcastMessage {
        interval: 9,
        payload: b"REVOKE beacon n3 (forged)".to_vec(),
        tag: Mac::compute(
            &old_key.derive(b"mutesla-mac"),
            b"REVOKE beacon n3 (forged)",
        ),
    };
    sensor
        .accept(&forged, 9)
        .expect("buffered too - not yet checkable");

    // Interval 11: the key is disclosed; genuine verifies, forgery dies.
    sensor
        .disclose(9, base_station.disclose(9))
        .expect("chain verifies");
    let verified = sensor.drain_verified();
    println!(
        "interval 11: key disclosed, {} message(s) verified",
        verified.len()
    );
    for (interval, payload) in &verified {
        println!(
            "  verified @ {interval}: {}",
            String::from_utf8_lossy(payload)
        );
    }
    assert_eq!(verified.len(), 1, "only the genuine revocation survives");

    // A replayed revocation arriving after disclosure is rejected outright.
    let replay_err = sensor.accept(&msg, 12).unwrap_err();
    println!("interval 12: replayed broadcast rejected ({replay_err})");
}
