//! The base-station revocation scheme under collusion pressure (§3).
//!
//! Shows the report-counter cap τ doing its job: colluding malicious
//! beacons spend their whole alert budget framing benign beacons, yet the
//! damage stays bounded by `N_a (τ+1) / (τ′+1)` — and honest alerts from
//! already-revoked (framed) detectors are still heard.
//!
//! Run with: `cargo run --example revocation_pipeline`

use secloc::attack::CollusionPolicy;
use secloc::core::SignedAlert;
use secloc::prelude::*;

fn main() {
    let config = RevocationConfig::paper_default();
    let keys = PairwiseKeyStore::new(Key::from_u128(0x5ec10c));
    let mut station = BaseStation::new(config);

    // Population: beacons 0..9 are compromised, 10..99 benign.
    let colluders: Vec<NodeId> = (0..10).map(NodeId).collect();
    let benign: Vec<NodeId> = (10..100).map(NodeId).collect();

    // ---- Phase 1: the colluders strike first. ----------------------
    let policy = CollusionPolicy::new(config.tau, config.tau_prime);
    println!(
        "collusion: {} reporters x budget {} = {} alerts, {} per kill -> expect {} victims",
        colluders.len(),
        policy.budget_per_reporter(),
        colluders.len() * policy.budget_per_reporter() as usize,
        policy.cost_per_revocation(),
        policy.expected_revocations(colluders.len()),
    );
    for (reporter, target) in policy.alerts(&colluders, &benign) {
        // Alerts are authenticated with the reporter's base-station key;
        // the station verifies before processing.
        let signed = SignedAlert::sign(Alert::new(reporter, target), &keys.base_station(reporter));
        assert!(signed.verify(&keys.base_station(reporter)));
        station.process(signed.alert());
    }
    let framed = station.revoked();
    println!("benign beacons framed: {:?}", framed);
    assert_eq!(framed.len(), policy.expected_revocations(colluders.len()));

    // ---- Phase 2: honest detectors report the real attackers. ------
    // Even the framed (revoked) detectors' alerts still count — the rule
    // the paper adds exactly for this scenario.
    let mut honest_reports = 0;
    'outer: for &malicious in &colluders {
        for &detector in benign.iter() {
            let out = station.process(Alert::new(detector, malicious));
            honest_reports += 1;
            if station.is_revoked(malicious) {
                println!("{malicious} revoked after {honest_reports} honest alerts ({out:?})");
                continue 'outer;
            }
        }
    }

    let revoked_malicious = colluders.iter().filter(|c| station.is_revoked(**c)).count();
    println!("\nmalicious revoked : {revoked_malicious}/10");
    println!(
        "benign revoked    : {} (bound: {})",
        station
            .revoked()
            .iter()
            .filter(|n| benign.contains(n))
            .count(),
        policy.expected_revocations(colluders.len()),
    );
    println!("accepted alerts   : {}", station.accepted_alerts().len());

    // A framed detector can still convict an attacker:
    let framed_detector = framed[0];
    let spent = station.reports_spent(framed_detector);
    println!(
        "\nframed detector {framed_detector} spent {spent} of its {} budget — \
         its voice was never silenced",
        config.tau + 1
    );
}
