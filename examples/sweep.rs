//! Sweep CLI: run an `attacker_p × seed` grid through the orchestrator
//! with caching, checkpointing, and live progress from the obs counters.
//!
//! ```text
//! cargo run --release --example sweep -- \
//!     [--p 0.1,0.3,0.5] [--seeds 5] [--workers 0] \
//!     [--nodes 1000 --beacons 100 --malicious 10] \
//!     [--cache results/sweep_cache.jsonl] \
//!     [--checkpoint results/sweep_checkpoint.jsonl]
//! ```
//!
//! Interrupt it mid-run and re-run the same command: the checkpoint
//! replays the finished prefix and only the remainder is simulated. Run it
//! twice to completion and the second invocation reports 100% cache hits.

use secloc::obs::{MetricsRegistry, Obs};
use secloc::sim::{average_outcomes, Orchestrator, SimConfig, SweepSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    p_values: Vec<f64>,
    seeds: u64,
    workers: usize,
    nodes: u32,
    beacons: u32,
    malicious: u32,
    cache: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        p_values: vec![0.1, 0.3, 0.5, 0.7, 0.9],
        seeds: 5,
        workers: 0,
        nodes: 300,
        beacons: 30,
        malicious: 3,
        cache: Some(PathBuf::from("results/sweep_cache.jsonl")),
        checkpoint: Some(PathBuf::from("results/sweep_checkpoint.jsonl")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--p" => {
                args.p_values = value("--p")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--p takes comma-separated floats"))
                    .collect();
            }
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds takes an integer"),
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--nodes" => args.nodes = value("--nodes").parse().expect("--nodes takes an integer"),
            "--beacons" => {
                args.beacons = value("--beacons")
                    .parse()
                    .expect("--beacons takes an integer")
            }
            "--malicious" => {
                args.malicious = value("--malicious")
                    .parse()
                    .expect("--malicious takes an integer")
            }
            "--cache" => args.cache = Some(PathBuf::from(value("--cache"))),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--no-cache" => args.cache = None,
            "--no-checkpoint" => args.checkpoint = None,
            other => panic!("unknown flag {other} (see the doc comment for usage)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let configs: Vec<SimConfig> = args
        .p_values
        .iter()
        .map(|&p| SimConfig {
            nodes: args.nodes,
            beacons: args.beacons,
            malicious: args.malicious,
            attacker_p: p,
            ..SimConfig::paper_default()
        })
        .collect();
    let seeds: Vec<u64> = (1..=args.seeds).collect();
    let spec = SweepSpec::product(&configs, &seeds);
    println!(
        "sweep: {} configs x {} seeds = {} cells",
        configs.len(),
        seeds.len(),
        spec.len()
    );

    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::with_metrics(registry.clone());
    let mut orch = Orchestrator::new().workers(args.workers).observed(&obs);
    if let Some(cache) = &args.cache {
        orch = orch.cache(cache);
    }
    if let Some(checkpoint) = &args.checkpoint {
        orch = orch.checkpoint(checkpoint);
    }

    // Progress from the obs counters, polled while the sweep runs.
    let done_counter = registry.counter("sweep.cells_done");
    let total = spec.len() as u64;
    let report = std::thread::scope(|scope| {
        let progress = scope.spawn(move || {
            let mut last = u64::MAX;
            loop {
                let done = done_counter.get();
                if done != last {
                    eprint!("\r  {done}/{total} cells done");
                    last = done;
                }
                if done >= total {
                    eprintln!();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });
        let report = orch.run(&spec).expect("sweep I/O failed");
        progress.join().expect("progress thread");
        report
    });

    println!(
        "resumed {} | cached {} | executed {} | workers {}",
        report.resumed, report.cache_hits, report.executed, report.workers_spawned
    );
    if report.executed == 0 {
        println!("all cells served without simulation (100% cache/checkpoint reuse)");
    }

    println!("\n  P     detect  false+  N'");
    for (i, &p) in args.p_values.iter().enumerate() {
        let rows = &report.outcomes[i * seeds.len()..(i + 1) * seeds.len()];
        let agg = average_outcomes(rows);
        println!(
            "  {p:<5} {:<7.3} {:<7.3} {:.2}",
            agg.detection_rate, agg.false_positive_rate, agg.affected_after
        );
    }
    if let Some(cache) = &args.cache {
        println!("\ncache: {}", cache.display());
    }
    if let Some(checkpoint) = &args.checkpoint {
        println!("checkpoint: {}", checkpoint.display());
    }
}
