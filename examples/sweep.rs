//! Sweep CLI: run an `attacker_p × seed` grid through the orchestrator
//! with caching, checkpointing, live progress, and an optional health
//! watchdog + flight recorder over the event stream.
//!
//! ```text
//! cargo run --release --example sweep -- \
//!     [--p 0.1,0.3,0.5] [--seeds 5] [--workers 0] [--location-workers 0] \
//!     [--nodes 1000 --beacons 100 --malicious 10] \
//!     [--cache results/sweep_cache.jsonl] \
//!     [--cache-format auto|jsonl|binary] \
//!     [--checkpoint results/sweep_checkpoint.jsonl] \
//!     [--events results/sweep_events.jsonl] \
//!     [--flightrec results] [--watchdog] [--stall-timeout 30]
//! ```
//!
//! Interrupt it mid-run and re-run the same command: the checkpoint
//! replays the finished prefix and only the remainder is simulated. Run it
//! twice to completion and the second invocation reports 100% cache hits.
//!
//! `--cache-format auto` (the default) keeps `.jsonl` paths on the legacy
//! line-oriented cache and opens everything else as a sharded binary cache
//! directory. Existing JSONL caches migrate with the `compact` subcommand:
//!
//! ```text
//! cargo run --release --example sweep -- compact \
//!     --from results/sweep_cache.jsonl --to results/sweep_cache.bin
//! # ...and back, for debugging with text tools:
//! cargo run --release --example sweep -- compact --export-jsonl \
//!     --from results/sweep_cache.bin --to results/sweep_cache.jsonl
//! ```
//!
//! With `--watchdog` the event stream is monitored inline by the
//! `secloc_obs::health` detectors (stalled stream, revocation-counter
//! anomalies, cache-hit collapse, checkpoint gap); any alert makes the
//! process exit with status 2 after printing what fired. With
//! `--flightrec DIR` a bounded flight recorder taps the stream and a
//! panicking cell (or a detected cache conflict) dumps its trace to
//! `DIR/flightrec_<cellkey>.jsonl` for post-mortem replay.

use secloc::obs::health::{
    CacheHitRateDetector, CheckpointGapDetector, CounterAnomalyDetector, HealthDetector,
    HealthMonitor, StalledStreamDetector,
};
use secloc::obs::{EventSink, FlightRecorder, JsonlSink, MetricsRegistry, Obs};
use secloc::sim::orchestrator::ResultCache;
use secloc::sim::{average_outcomes, BinaryCache, CacheFormat, Orchestrator, SimConfig, SweepSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    p_values: Vec<f64>,
    seeds: u64,
    workers: usize,
    location_workers: usize,
    nodes: u32,
    beacons: u32,
    malicious: u32,
    cache: Option<PathBuf>,
    cache_format: CacheFormat,
    checkpoint: Option<PathBuf>,
    events: Option<PathBuf>,
    flightrec: Option<PathBuf>,
    watchdog: bool,
    stall_timeout: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        p_values: vec![0.1, 0.3, 0.5, 0.7, 0.9],
        seeds: 5,
        workers: 0,
        location_workers: 0,
        nodes: 300,
        beacons: 30,
        malicious: 3,
        cache: Some(PathBuf::from("results/sweep_cache.jsonl")),
        cache_format: CacheFormat::Auto,
        checkpoint: Some(PathBuf::from("results/sweep_checkpoint.jsonl")),
        events: None,
        flightrec: None,
        watchdog: false,
        stall_timeout: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--p" => {
                args.p_values = value("--p")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--p takes comma-separated floats"))
                    .collect();
            }
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds takes an integer"),
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--location-workers" => {
                // Intra-run localization thread budget, divided across the
                // sweep pool (see Orchestrator::location_workers); outcomes
                // are bit-identical at any value.
                args.location_workers = value("--location-workers")
                    .parse()
                    .expect("--location-workers takes an integer")
            }
            "--nodes" => args.nodes = value("--nodes").parse().expect("--nodes takes an integer"),
            "--beacons" => {
                args.beacons = value("--beacons")
                    .parse()
                    .expect("--beacons takes an integer")
            }
            "--malicious" => {
                args.malicious = value("--malicious")
                    .parse()
                    .expect("--malicious takes an integer")
            }
            "--cache" => args.cache = Some(PathBuf::from(value("--cache"))),
            "--cache-format" => {
                let v = value("--cache-format");
                args.cache_format = CacheFormat::parse(&v)
                    .unwrap_or_else(|| panic!("--cache-format takes auto|jsonl|binary, got {v}"));
            }
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--no-cache" => args.cache = None,
            "--no-checkpoint" => args.checkpoint = None,
            "--events" => args.events = Some(PathBuf::from(value("--events"))),
            "--flightrec" => args.flightrec = Some(PathBuf::from(value("--flightrec"))),
            "--watchdog" => args.watchdog = true,
            "--stall-timeout" => {
                args.stall_timeout = value("--stall-timeout")
                    .parse()
                    .expect("--stall-timeout takes seconds")
            }
            other => panic!("unknown flag {other} (see the doc comment for usage)"),
        }
    }
    args
}

/// `sweep compact`: migrate a JSONL cache into the sharded binary format,
/// or (with `--export-jsonl`) dump a binary cache back to JSONL so it can
/// be inspected with text tools. Entries are copied in ascending key order
/// so two compactions of the same cache produce identical bytes.
fn run_compact(rest: Vec<String>) {
    let mut from: Option<PathBuf> = None;
    let mut to: Option<PathBuf> = None;
    let mut export_jsonl = false;
    let mut it = rest.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--from" => from = Some(PathBuf::from(value("--from"))),
            "--to" => to = Some(PathBuf::from(value("--to"))),
            "--export-jsonl" => export_jsonl = true,
            other => panic!("unknown compact flag {other} (use --from/--to/--export-jsonl)"),
        }
    }
    let from = from.expect("compact requires --from <cache>");
    let to = to.expect("compact requires --to <cache>");
    let mut entries = if export_jsonl {
        BinaryCache::open(&from, 0)
            .expect("open binary cache")
            .entries()
            .expect("scan binary cache")
    } else {
        ResultCache::open(&from)
            .expect("open jsonl cache")
            .entries()
            .map(|(k, o)| (k, o.clone()))
            .collect::<Vec<_>>()
    };
    entries.sort_by_key(|(k, _)| k.0);
    let total = entries.len();
    let (mut inserted, mut duplicates) = (0usize, 0usize);
    if export_jsonl {
        let mut out = ResultCache::open(&to).expect("open jsonl target");
        for (key, outcome) in entries {
            match out
                .insert_checked(key, outcome)
                .expect("write jsonl target")
            {
                secloc::sim::orchestrator::CacheInsert::Inserted => inserted += 1,
                secloc::sim::orchestrator::CacheInsert::Duplicate => duplicates += 1,
                secloc::sim::orchestrator::CacheInsert::Conflict => {
                    eprintln!("compact: key {key:?} conflicts with the target cache");
                    std::process::exit(1);
                }
            }
        }
    } else {
        let mut out = BinaryCache::open(&to, total).expect("open binary target");
        for (key, outcome) in entries {
            match out
                .insert_checked(key, outcome)
                .expect("write binary target")
            {
                secloc::sim::orchestrator::CacheInsert::Inserted => inserted += 1,
                secloc::sim::orchestrator::CacheInsert::Duplicate => duplicates += 1,
                secloc::sim::orchestrator::CacheInsert::Conflict => {
                    eprintln!("compact: key {key:?} conflicts with the target cache");
                    std::process::exit(1);
                }
            }
        }
        let shards = secloc::sim::cache::shard_count_for(total);
        println!(
            "compact: {total} entries -> {} ({shards} shards)",
            to.display()
        );
    }
    println!(
        "compact: {inserted} written, {duplicates} already present, {} -> {}",
        from.display(),
        to.display()
    );
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("compact")
        || raw.first().map(String::as_str) == Some("--compact")
    {
        raw.remove(0);
        run_compact(raw);
        return;
    }
    let args = parse_args();
    let configs: Vec<SimConfig> = args
        .p_values
        .iter()
        .map(|&p| SimConfig {
            nodes: args.nodes,
            beacons: args.beacons,
            malicious: args.malicious,
            attacker_p: p,
            ..SimConfig::paper_default()
        })
        .collect();
    let seeds: Vec<u64> = (1..=args.seeds).collect();
    let spec = SweepSpec::product(&configs, &seeds);
    println!(
        "sweep: {} configs x {} seeds = {} cells",
        configs.len(),
        seeds.len(),
        spec.len()
    );

    // Sink chain, innermost first: JSONL file <- health monitor. The
    // flight recorder is handed to the orchestrator, which fans it into
    // whatever chain is installed here.
    let registry = Arc::new(MetricsRegistry::new());
    let events_sink: Option<Arc<JsonlSink>> = args.events.as_ref().map(|path| {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create events dir");
            }
        }
        Arc::new(JsonlSink::create(path).expect("create events file"))
    });
    let downstream: Option<Arc<dyn EventSink + Send + Sync>> = events_sink
        .clone()
        .map(|s| s as Arc<dyn EventSink + Send + Sync>);
    let monitor: Option<Arc<HealthMonitor>> = args.watchdog.then(|| {
        let detectors: Vec<Box<dyn HealthDetector>> = vec![
            Box::new(StalledStreamDetector::new(Duration::from_secs(
                args.stall_timeout,
            ))),
            Box::new(CounterAnomalyDetector::new(None)),
            Box::new(CacheHitRateDetector::new(0.5, 16)),
            Box::new(CheckpointGapDetector::new(64)),
        ];
        Arc::new(HealthMonitor::new(detectors, downstream.clone()))
    });
    let sink: Option<Arc<dyn EventSink + Send + Sync>> = match &monitor {
        Some(m) => Some(m.clone() as Arc<dyn EventSink + Send + Sync>),
        None => downstream,
    };
    let obs = Obs::new(Some(registry.clone()), sink);

    let recorder = args
        .flightrec
        .as_ref()
        .map(|_| Arc::new(FlightRecorder::new(4096)));
    let mut orch = Orchestrator::new()
        .workers(args.workers)
        .location_workers(args.location_workers)
        .cache_format(args.cache_format)
        .observed(&obs);
    if let Some(cache) = &args.cache {
        orch = orch.cache(cache);
    }
    if let Some(checkpoint) = &args.checkpoint {
        orch = orch.checkpoint(checkpoint);
    }
    if let (Some(recorder), Some(dir)) = (&recorder, &args.flightrec) {
        orch = orch.flight_recorder(recorder.clone(), dir);
    }

    // Live progress from the obs counters, polled while the sweep runs;
    // the same loop drives the watchdog's wall-clock detectors.
    let done_counter = registry.counter("sweep.cells_done");
    let resumed_counter = registry.counter("sweep.cells_resumed");
    let cached_counter = registry.counter("sweep.cells_cached");
    let shards_gauge = registry.gauge("sweep.cache_shards");
    let total = spec.len() as u64;
    let started = Instant::now();
    let tick_monitor = monitor.clone();
    let report = std::thread::scope(|scope| {
        let progress = scope.spawn(move || {
            let mut last = u64::MAX;
            loop {
                let done = done_counter.get();
                if done != last {
                    let reused = resumed_counter.get() + cached_counter.get();
                    let reuse_pct = if done > 0 {
                        100.0 * reused.min(done) as f64 / done as f64
                    } else {
                        0.0
                    };
                    let elapsed = started.elapsed().as_secs_f64();
                    let rate = if elapsed > 0.0 {
                        done as f64 / elapsed
                    } else {
                        0.0
                    };
                    let eta = if rate > 0.0 {
                        (total - done) as f64 / rate
                    } else {
                        f64::INFINITY
                    };
                    let shards = shards_gauge.get();
                    let shard_note = if shards > 0 {
                        format!(" | {shards} shards")
                    } else {
                        String::new()
                    };
                    eprint!(
                        "\r  {done}/{total} cells | {rate:.1} cells/s | reuse {reuse_pct:.0}%{shard_note} | ETA {eta:.0}s   "
                    );
                    last = done;
                }
                if done >= total {
                    eprintln!();
                    return;
                }
                if let Some(m) = &tick_monitor {
                    m.tick();
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });
        let report = orch.run(&spec).expect("sweep I/O failed");
        progress.join().expect("progress thread");
        report
    });

    println!(
        "resumed {} | cached {} | executed {} | workers {} (used {}) | steals {} | {:.1} cells/s",
        report.resumed,
        report.cache_hits,
        report.executed,
        report.workers_spawned,
        report.workers_used,
        report.steal_batches,
        report.cells_per_sec
    );
    if report.cache_shards > 0 {
        println!("cache shards: {}", report.cache_shards);
    }
    if report.executed == 0 {
        println!("all cells served without simulation (100% cache/checkpoint reuse)");
    }

    println!("\n  P     detect  false+  N'");
    for (i, &p) in args.p_values.iter().enumerate() {
        let rows = &report.outcomes[i * seeds.len()..(i + 1) * seeds.len()];
        let agg = average_outcomes(rows);
        println!(
            "  {p:<5} {:<7.3} {:<7.3} {:.2}",
            agg.detection_rate, agg.false_positive_rate, agg.affected_after
        );
    }
    if let Some(cache) = &args.cache {
        println!("\ncache: {}", cache.display());
    }
    if let Some(checkpoint) = &args.checkpoint {
        println!("checkpoint: {}", checkpoint.display());
    }

    // End-of-stream invariants, then surface sink I/O errors loudly: a
    // silently truncated event log is worse than a failed run.
    if let Some(m) = &monitor {
        m.finish();
    }
    if let Some(sink) = &events_sink {
        if let Err(err) = sink.try_flush() {
            eprintln!("events sink error: {err}");
            std::process::exit(1);
        }
        if let Some(path) = &args.events {
            println!("events: {}", path.display());
        }
    }
    if let Some(m) = &monitor {
        let alerts = m.alerts();
        if !alerts.is_empty() {
            eprintln!("\nWATCHDOG: {} health alert(s)", alerts.len());
            for alert in &alerts {
                eprintln!("  [{}] {}", alert.detector, alert.message);
            }
            if let (Some(recorder), Some(dir)) = (&recorder, &args.flightrec) {
                let path = dir.join("flightrec_health.jsonl");
                if let Ok(n) = recorder.dump(&path) {
                    eprintln!("  flight dump: {} ({n} events)", path.display());
                }
            }
            std::process::exit(2);
        }
        println!("watchdog: healthy");
    }
}
