//! End-to-end value of the defence: localization quality across a network
//! under attack, with and without the detection + revocation suite.
//!
//! Sweeps the attacker's aggressiveness `P` and prints, for each setting,
//! how many sensors stay poisoned and how accurate localization is before
//! and after revocation.
//!
//! Run with: `cargo run --release --example secure_localization`

use secloc::prelude::*;
use secloc::sim::average_outcomes;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    println!(
        "{:>5} | {:>9} | {:>9} | {:>10} | {:>10} | {:>12} | {:>12}",
        "P", "det.rate", "FP rate", "N' before", "N' after", "err before", "err after"
    );
    println!("{}", "-".repeat(84));

    for p in [0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let config = SimConfig {
            attacker_p: p,
            ..SimConfig::paper_default()
        };
        let outcomes: Vec<SimOutcome> = seeds
            .iter()
            .map(|&s| {
                Runner::new(config.clone(), s)
                    .run(RunOptions::new())
                    .outcome
            })
            .collect();
        let agg = average_outcomes(&outcomes);
        let err = |f: &dyn Fn(&SimOutcome) -> Option<f64>| -> f64 {
            let vals: Vec<f64> = outcomes.iter().filter_map(f).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        println!(
            "{:>5.2} | {:>9.2} | {:>9.3} | {:>10.2} | {:>10.2} | {:>9.2} ft | {:>9.2} ft",
            p,
            agg.detection_rate,
            agg.false_positive_rate,
            agg.affected_before,
            agg.affected_after,
            err(&|o| o.mean_loc_error_before_ft),
            err(&|o| o.mean_loc_error_after_ft),
        );
    }

    println!(
        "\nReading: aggressive attackers (high P) poison more sensors before \
         revocation,\nbut are revoked almost surely, so their post-revocation \
         impact N' collapses —\nthe trade-off the paper's Figures 8/9 formalise."
    );
}
