//! Quickstart: detect a malicious beacon signal, filter replays, revoke the
//! attacker — the paper's whole pipeline on a handful of hand-built
//! observations, then one full simulated network.
//!
//! Run with: `cargo run --example quickstart`

use secloc::prelude::*;

fn main() {
    // ---------------------------------------------------------------
    // 1. The §2.1 detector: one observation at a time.
    // ---------------------------------------------------------------
    let pipeline = DetectionPipeline::paper_default();

    // A detecting node at (100, 100) — a beacon posing as a plain sensor
    // under one of its detecting IDs — asks a nearby beacon for a signal.
    let detector_position = Point2::new(100.0, 100.0);

    // Honest reply: the beacon is 100 ft away at (200, 100) and says so.
    let honest = Observation {
        detector_position,
        declared_position: Point2::new(200.0, 100.0),
        measured_distance_ft: 104.2, // RSSI ranging, within the 10 ft bound
        rtt: Cycles::new(6_600),
        wormhole_detector_fired: false,
    };
    println!("honest beacon     -> {:?}", pipeline.evaluate(&honest));

    // Lying reply: same physics, but the packet claims (600, 500).
    let lying = Observation {
        declared_position: Point2::new(600.0, 500.0),
        ..honest
    };
    println!("lying beacon      -> {:?}", pipeline.evaluate(&lying));

    // Wormhole replay of a distant benign beacon: looks malicious, but the
    // wormhole detector fired, so no alert — false positive avoided.
    let wormholed = Observation {
        declared_position: Point2::new(800.0, 700.0),
        measured_distance_ft: 40.0,
        wormhole_detector_fired: true,
        ..honest
    };
    println!("wormhole replay   -> {:?}", pipeline.evaluate(&wormholed));

    // Local replay: a neighbour's signal re-sent by an attacker arrives a
    // whole packet late; the RTT filter catches it.
    let replayed = Observation {
        measured_distance_ft: 55.0,
        rtt: Cycles::new(6_600 + 45 * 8 * 384), // one 45-byte packet later
        ..honest
    };
    println!("local replay      -> {:?}", pipeline.evaluate(&replayed));

    // ---------------------------------------------------------------
    // 2. The §3 revocation scheme.
    // ---------------------------------------------------------------
    let mut station = BaseStation::new(RevocationConfig::paper_default());
    println!("\nbase station thresholds: {:?}", station.config());
    for detector in [11, 12, 13] {
        let outcome = station.process(Alert::new(NodeId(detector), NodeId(7)));
        println!("alert n{detector} -> n7: {outcome:?}");
    }
    println!("n7 revoked: {}", station.is_revoked(NodeId(7)));

    // ---------------------------------------------------------------
    // 3. The §4 experiment, end to end.
    // ---------------------------------------------------------------
    let config = SimConfig::paper_default();
    println!(
        "\nsimulating {} nodes / {} beacons / {} malicious (P = {}) ...",
        config.nodes, config.beacons, config.malicious, config.attacker_p
    );
    let runner = Runner::new(config, 2005);
    let outcome = runner.run(RunOptions::new()).outcome;
    println!("detection rate        : {:.2}", outcome.detection_rate());
    println!(
        "false positive rate   : {:.3}",
        outcome.false_positive_rate()
    );
    println!(
        "affected sensors (N') : {:.2} per malicious beacon",
        outcome.affected_after
    );
    println!("benign alerts         : {}", outcome.benign_alerts);
    println!("collusion alerts      : {}", outcome.collusion_alerts);
    if let (Some(before), Some(after)) = (
        outcome.mean_loc_error_before_ft,
        outcome.mean_loc_error_after_ft,
    ) {
        println!("localization error    : {before:.2} ft -> {after:.2} ft after revocation");
    }

    // ---------------------------------------------------------------
    // 4. The same network under degraded conditions: a fault plan.
    // ---------------------------------------------------------------
    let plan = FaultPlan::default()
        .with_burst_loss(BurstLossSpec::mild())
        .with_clock_drift(500)
        .with_churn(ChurnSpec::random(0.1, 0.4));
    let degraded = runner.run(RunOptions::new().faults(plan)).outcome;
    println!(
        "\nunder mild faults     : detection {:.2} (clean {:.2})",
        degraded.detection_rate(),
        outcome.detection_rate()
    );
}
