//! Instrumented simulation run: metrics, events, and a phase-timing report.
//!
//! Attaches a [`MetricsRegistry`] and a JSONL event sink to a shrunk
//! experiment, runs it over a handful of seeds, and writes under
//! `results/`:
//!
//! - `obs_events.jsonl` — every emitted event, one JSON object per line;
//! - `obs_summary.txt` — the human-readable [`RunReport`];
//! - `obs_metrics.csv` / `obs_phases.csv` — counters, gauges and
//!   per-phase wall times;
//! - `obs_rounds.csv` — one row of headline measurements per seed.
//!
//! Run with: `cargo run --example obs_report`

use secloc::obs::{output, MetricsRegistry, Obs};
use secloc::sim::report::write_rounds_csv;
use secloc::sim::{RunOptions, RunReport, Runner, SimConfig, SimOutcome};
use std::path::PathBuf;
use std::sync::Arc;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn main() {
    let mut config = SimConfig::paper_default();
    config.nodes = 300;
    config.beacons = 30;
    config.malicious = 3;
    config.attacker_p = 0.3;

    let dir = results_dir();
    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(output::jsonl_sink(&dir, "obs_events.jsonl").expect("create event log"));
    let telemetry = Obs::new(Some(registry.clone()), Some(sink));

    let seeds = [1u64, 2, 3, 4, 5];
    let mut rounds: Vec<(u64, SimOutcome)> = Vec::new();
    for &seed in &seeds {
        let runner = Runner::new_observed(config.clone(), seed, &telemetry);
        let outcome = runner
            .run(RunOptions::new().traced().observed(&telemetry))
            .outcome;
        println!(
            "seed {seed}: detection {:.2}, false positives {:.2}, N' = {:.2}",
            outcome.detection_rate(),
            outcome.false_positive_rate(),
            outcome.affected_after,
        );
        rounds.push((seed, outcome));
    }

    let (_, last_outcome) = rounds.last().expect("at least one seed").clone();
    let report = RunReport::collect(last_outcome, &telemetry);
    println!("\n{}", report.render_text());

    let mut written = report.write(&dir, "obs").expect("write report");
    written.push(write_rounds_csv(&dir, "obs_rounds.csv", &rounds).expect("write rounds"));
    written.push(dir.join("obs_events.jsonl"));
    println!("artifacts:");
    for path in written {
        println!("  {}", path.display());
    }
}
