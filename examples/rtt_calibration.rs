//! Field calibration of the local-replay filter (§2.2.2 in practice).
//!
//! A deployment ships with the RTT threshold x_max measured on the bench
//! (the paper's Fig. 4 campaign). This example replays that workflow:
//! collect attack-free RTTs, derive x_max, then show what the chosen
//! threshold means operationally — which replay delays are caught, and how
//! over- or under-calibrating the threshold trades missed replays against
//! false replay verdicts on honest traffic.
//!
//! Run with: `cargo run --release --example rtt_calibration`

use rand::rngs::StdRng;
use rand::SeedableRng;
use secloc::core::{LocalReplayVerdict, RttFilter};
use secloc::prelude::*;
use secloc::radio::CYCLES_PER_BIT;

fn main() {
    let model = RttModel::paper_default();
    let mut rng = StdRng::seed_from_u64(2005);

    // --- Step 1: the measurement campaign. ---
    let cdf = model.empirical_cdf(10_000, 100.0, &mut rng);
    println!("calibration campaign: 10,000 attack-free exchanges");
    println!("  x_min = {} cycles", cdf.x_min());
    println!("  x_max = {} cycles", cdf.x_max());
    for q in [0.5, 0.9, 0.99] {
        println!("  {:>4.0}% quantile = {}", q * 100.0, cdf.quantile(q));
    }
    let spread_bits = (cdf.x_max().as_u64() - cdf.x_min().as_u64()) as f64 / CYCLES_PER_BIT as f64;
    println!("  spread = {spread_bits:.2} bit-times (paper: ~4.5)\n");

    // --- Step 2: operational consequences of the threshold choice. ---
    println!(
        "{:>22} | {:>12} | {:>14}",
        "threshold", "honest pass", "1-packet catch"
    );
    let candidates = [
        ("x_max (calibrated)", RttFilter::from_cdf(&cdf)),
        (
            "x_max - 2 bits",
            RttFilter::new(Cycles::new(cdf.x_max().as_u64() - 2 * CYCLES_PER_BIT)),
        ),
        (
            "x_max + 8 bits",
            RttFilter::new(Cycles::new(cdf.x_max().as_u64() + 8 * CYCLES_PER_BIT)),
        ),
        (
            "x_max + 400 bits",
            RttFilter::new(Cycles::new(cdf.x_max().as_u64() + 400 * CYCLES_PER_BIT)),
        ),
    ];
    let packet = Cycles::from_bytes(45);
    for (name, filter) in candidates {
        let honest_pass = rate(
            &model,
            &mut rng,
            Cycles::ZERO,
            &filter,
            LocalReplayVerdict::Fresh,
        );
        let replay_catch = rate(
            &model,
            &mut rng,
            packet,
            &filter,
            LocalReplayVerdict::LocallyReplayed,
        );
        println!("{name:>22} | {honest_pass:>11.1}% | {replay_catch:>13.1}%");
    }

    println!(
        "\nReading: the calibrated x_max passes all honest traffic and catches\n\
         every whole-packet replay. Tightening it below x_max starts flagging\n\
         honest exchanges (availability loss); loosening it by a few bits is\n\
         harmless, but a sloppy +400-bit threshold lets store-and-forward\n\
         replays through — the margin in Fig. 4 is what makes the filter work."
    );
}

fn rate(
    model: &RttModel,
    rng: &mut StdRng,
    extra: Cycles,
    filter: &RttFilter,
    want: LocalReplayVerdict,
) -> f64 {
    let trials = 20_000;
    let hits = (0..trials)
        .filter(|_| filter.classify(model.sample(100.0, extra, rng)) == want)
        .count();
    hits as f64 / trials as f64 * 100.0
}
