//! A tour of the attacks of the paper's Figure 1 — and of the defences that
//! stop each one.
//!
//! Run with: `cargo run --example attacks_tour`

use rand::rngs::StdRng;
use rand::SeedableRng;
use secloc::attack::{LocalReplayer, Masquerader};
use secloc::core::{LocalReplayVerdict, RttFilter};
use secloc::localization::{CentroidEstimator, Estimator, LocationReference, MmseEstimator};
use secloc::prelude::*;
use secloc::radio::timing::RttModel;
use secloc::radio::{BeaconPayload, Frame, FrameBody};

fn main() {
    masquerade_attack();
    compromised_beacon_attack();
    wormhole_attack();
    local_replay_attack();
}

/// Fig. 1a: an outsider pretends to be beacon n3 — defeated by packet MACs.
fn masquerade_attack() {
    println!("== masquerade attack (Fig. 1a) ==");
    let keys = PairwiseKeyStore::new(Key::from_u128(0xdeadbeef));
    let victim = NodeId(500);
    let attacker = Masquerader::new(NodeId(3), Point2::new(10.0, 10.0), Key::from_u128(0xbad));
    let forged = attacker.forge_beacon(victim);
    let verdict = forged.open(victim, &keys.pairwise(NodeId(3), victim));
    println!("victim opens forged beacon: {verdict:?}");
    assert!(verdict.is_err());
    println!("-> rejected by MAC verification; outsiders need no further defence\n");
}

/// Fig. 1b: an insider beacon with valid keys lies about its location —
/// this is what the detection suite exists for.
fn compromised_beacon_attack() {
    println!("== compromised beacon attack (Fig. 1b) ==");
    let truth = Point2::new(120.0, 80.0);
    // Three honest beacons and one liar feeding a sensor's estimator.
    let mut refs: Vec<LocationReference> = [(0.0, 0.0), (250.0, 0.0), (0.0, 250.0)]
        .iter()
        .map(|&(x, y)| {
            let a = Point2::new(x, y);
            LocationReference::new(a, a.distance(truth))
        })
        .collect();
    let honest_estimate = MmseEstimator::default().estimate(&refs).unwrap();
    refs.push(LocationReference::new(Point2::new(600.0, 600.0), 50.0));
    let attacked_estimate = MmseEstimator::default().estimate(&refs).unwrap();
    println!("true position    : {truth}");
    println!(
        "honest estimate  : {} (residual {:.2})",
        honest_estimate.position, honest_estimate.residual_rms
    );
    println!(
        "attacked estimate: {} (residual {:.2})",
        attacked_estimate.position, attacked_estimate.residual_rms
    );
    println!("centroid is even softer: {}", {
        let c = CentroidEstimator::default().estimate(&refs).unwrap();
        c.position
    });

    // The detector's view of the same lie:
    let detector = SignalDetector::new(10.0);
    let verdict = detector.check(truth, Point2::new(600.0, 600.0), 50.0);
    println!("detector verdict on the lying signal: {verdict:?}\n");
}

/// Fig. 1c: a wormhole replays a distant benign beacon — geographic check
/// plus wormhole detector suppress the false accusation.
fn wormhole_attack() {
    println!("== wormhole replay (Fig. 1c / §2.2.1) ==");
    let wormhole = Wormhole::paper_default();
    println!(
        "wormhole spans {:.0} ft between {} and {}",
        wormhole.span(),
        wormhole.end_a(),
        wormhole.end_b()
    );
    let detector_pos = Point2::new(820.0, 680.0); // near end B
    let victim_beacon = Point2::new(90.0, 120.0); // near end A, truthful
    let exit = wormhole.exit_for(victim_beacon, 150.0).expect("captured");
    println!("signal re-enters the air at {exit}");

    let filter = WormholeFilter::new(150.0);
    let verdict = filter.classify(detector_pos, victim_beacon, true);
    println!("wormhole filter verdict (detector fired): {verdict:?}");
    let missed = filter.classify(detector_pos, victim_beacon, false);
    println!("... and when the wormhole detector misses (prob 1-p_d): {missed:?}");
    println!("-> the miss case is the paper's only benign-vs-benign false-alert path\n");
}

/// §2.2.2: an attacker replays a neighbour's beacon signal; the RTT filter
/// sees the extra store-and-forward delay.
fn local_replay_attack() {
    println!("== local replay (§2.2.2) ==");
    let model = RttModel::paper_default();
    let filter = RttFilter::paper_default();
    let mut rng = StdRng::seed_from_u64(7);

    let honest_rtt = model.sample(80.0, Cycles::ZERO, &mut rng);
    println!(
        "honest RTT   : {honest_rtt} -> {:?}",
        filter.classify(honest_rtt)
    );

    let frame = Frame::seal(
        NodeId(1),
        NodeId(2),
        FrameBody::Beacon(BeaconPayload {
            beacon: NodeId(1),
            declared: Point2::new(50.0, 50.0),
        }),
        &Key::from_u128(1),
    );
    let replayer = LocalReplayer::new(Point2::new(60.0, 60.0), Cycles::new(500));
    let delay = replayer.replay_delay(&frame);
    let replayed_rtt = model.sample(80.0, delay, &mut rng);
    println!(
        "replayed RTT : {replayed_rtt} ({} bit-times late) -> {:?}",
        delay.as_bits(),
        filter.classify(replayed_rtt)
    );
    assert_eq!(
        filter.classify(replayed_rtt),
        LocalReplayVerdict::LocallyReplayed
    );
    println!("-> any whole-packet replay exceeds the ~4.5-bit margin and is caught");
}
