//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This crate implements the subset of the proptest API the
//! workspace's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_assume!`, `any`, numeric-range and tuple strategies, `prop_map`,
//! `prop_filter`, `collection::vec`, `array::uniform4`, `sample::Index`
//! and `ProptestConfig::with_cases` — as a plain random-case runner.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! assertion message, not a minimised input), and case generation uses a
//! fixed per-test deterministic seed, so runs are reproducible.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait: default strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::{Rejected, TestRng};
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            u128::arbitrary_value(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite values only, spread over a broad but usable magnitude.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.next_u64() % 64) as i32 - 32;
            mantissa * (2.0f64).powi(exp)
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Default for Any<A> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> Result<A, Rejected> {
            Ok(A::arbitrary_value(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::{Rejected, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::{Rejected, TestRng};

    macro_rules! uniform_array {
        ($name:ident, $fn_name:ident, $n:expr) => {
            /// A strategy producing fixed-size arrays from one element strategy.
            #[derive(Debug, Clone)]
            pub struct $name<S>(S);

            /// Arrays of `
            #[doc = stringify!($n)]
            /// ` values drawn from `element`.
            pub fn $fn_name<S: Strategy>(element: S) -> $name<S> {
                $name(element)
            }

            impl<S: Strategy> Strategy for $name<S> {
                type Value = [S::Value; $n];

                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                    let mut out = Vec::with_capacity($n);
                    for _ in 0..$n {
                        out.push(self.0.generate(rng)?);
                    }
                    match out.try_into() {
                        Ok(arr) => Ok(arr),
                        Err(_) => unreachable!("length checked"),
                    }
                }
            }
        };
    }

    uniform_array!(UniformArray2, uniform2, 2);
    uniform_array!(UniformArray3, uniform3, 3);
    uniform_array!(UniformArray4, uniform4, 4);
    uniform_array!(UniformArray8, uniform8, 8);
    uniform_array!(UniformArray32, uniform32, 32);
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the abstract index against a concrete length.
        ///
        /// # Panics
        ///
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for "any value of type `A`".
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any::default()
    }
}

/// Defines property tests. Each contained `fn` becomes a `#[test]` that
/// draws random inputs from the given strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let __strategies = ($($strat,)+);
            let __max_attempts = __config.cases.saturating_mul(100).max(10_000);
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest: too many rejected cases in `{}` ({} passed of {} wanted)",
                    stringify!($name), __passed, __config.cases,
                );
                let __values = match $crate::strategy::Strategy::generate(
                    &__strategies,
                    &mut __rng,
                ) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let ($($pat,)+) = __values;
                // The immediately-called closure gives `prop_assume!` an
                // early-return channel; silence the pedantic lint at every
                // expansion site.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err(_) => continue,
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Discards the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u32..10, (x, y) in (0.0..1.0f64, -5i64..=5)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn maps_and_filters(
            v in crate::collection::vec(any::<u8>(), 1..16),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(b in any::<bool>()) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn filter_and_map_compose() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u32..100)
            .prop_map(|n| n * 2)
            .prop_filter("multiple of 4", |n| n % 4 == 0);
        let mut rng = TestRng::for_test("filter_and_map_compose");
        for _ in 0..100 {
            if let Ok(v) = strat.generate(&mut rng) {
                assert_eq!(v % 4, 0);
            }
        }
    }

    #[test]
    fn arrays_have_right_arity() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::for_test("arrays");
        let arr = crate::array::uniform4(1u64..5).generate(&mut rng).unwrap();
        assert_eq!(arr.len(), 4);
        assert!(arr.iter().all(|v| (1..5).contains(v)));
    }
}
