//! The case runner's configuration, RNG and rejection type.

/// Marker for a rejected (discarded) test case — from `prop_assume!` or an
/// unsatisfied `prop_filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving case generation (xoshiro256++,
/// seeded from a hash of the test name so every test gets an independent,
/// reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded deterministically from `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    /// A generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below_u128 needs a positive bound");
        if bound == 1 {
            return 0;
        }
        if bound <= u64::MAX as u128 {
            let bound = bound as u64;
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let wide = (self.next_u64() as u128) * (bound as u128);
                if (wide as u64) >= threshold {
                    return wide >> 64;
                }
            }
        }
        let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
        loop {
            let draw = self.next_u128();
            if draw <= zone {
                return draw % bound;
            }
        }
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[0, 1]`.
    pub fn unit_f64_closed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}
