//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::{Rejected, TestRng};
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or rejects the attempt (e.g. an unsatisfiable
    /// filter); the runner then retries with fresh randomness.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; `whence` labels the filter in
    /// rejection diagnostics.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        // Retry locally before giving the whole case back to the runner;
        // 32 draws make sparse-but-not-rare filters (like non-degenerate
        // geometry) converge quickly.
        for _ in 0..32 {
            let candidate = self.inner.generate(rng)?;
            if (self.pred)(&candidate) {
                return Ok(candidate);
            }
        }
        let _ = self.whence;
        Err(Rejected)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty strategy range");
                // Sign extension makes the wrapping difference the exact
                // width for signed and unsigned types alike.
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = rng.below_u128(width);
                Ok(((self.start as u128).wrapping_add(offset)) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128).wrapping_sub(lo as u128);
                if width == u128::MAX {
                    // Only reachable for a full 128-bit range.
                    return Ok(rng.next_u128() as $t);
                }
                let offset = rng.below_u128(width + 1);
                Ok(((lo as u128).wrapping_add(offset)) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                Ok(if v >= self.end { self.start } else { v })
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = rng.unit_f64_closed() as $t;
                Ok(lo + (hi - lo) * u)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
