//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This crate keeps `cargo bench` working by implementing the API
//! subset the workspace uses — `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!` and `criterion_main!` — as a quick
//! wall-clock sampler: per benchmark it calibrates an iteration count,
//! takes `sample_size` timed samples, and prints min/median/max per
//! iteration. No statistical analysis, HTML reports or history.

#![forbid(unsafe_code)]

use std::time::Instant;

/// An opaque pass-through that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_sample_nanos: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_nanos: 2_000_000, // ~2 ms per sample
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            target_sample_nanos: self.target_sample_nanos,
            samples_ns_per_iter: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    target_sample_nanos: u64,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: how many iterations fill one sample window?
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().as_nanos().max(1) as u64;
        let iters_per_sample = (self.target_sample_nanos / once).clamp(1, 1_000_000);

        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter
                .push(nanos / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns_per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_nanos(min),
            format_nanos(median),
            format_nanos(max)
        );
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(
        name = unit_group;
        config = Criterion::default().sample_size(3);
        targets = quick
    );

    #[test]
    fn group_runs() {
        unit_group();
    }

    #[test]
    fn formatting_scales() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_nanos(2.5e9).ends_with(" s"));
    }
}
