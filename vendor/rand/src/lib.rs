//! Offline stand-in for the `rand` crate, covering the 0.8 API subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no network access and no registry cache, so the
//! real crate cannot be fetched; this crate keeps the workspace buildable.
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but with the same determinism contract:
//! equal seeds produce equal sequences, which is all the simulations and
//! tests rely on.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_open(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform double in `[0, 1]` from 53 random bits.
fn unit_closed(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, RR>(&mut self, range: RR) -> T
    where
        RR: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} must be in [0, 1]");
        if p >= 1.0 {
            // Consume a draw anyway so the stream advances consistently.
            let _ = self.next_u64();
            return true;
        }
        unit_open(self.next_u64()) < p
    }

    /// Samples a value of a standard-distribution type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_open(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_open(rng.next_u64()) as f32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over ranges.
///
/// The `SampleRange` impls below are generic over this trait (mirroring the
/// real crate's structure) so that type inference unifies the range's
/// element type with the call-site's expected type — per-type `SampleRange`
/// impls would leave bare float literals ambiguous.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform integer in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Widening-multiply method with rejection of the biased zone.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        return uniform_u64_below(rng, bound as u64) as u128;
    }
    // Rejection sampling on the raw 128-bit draw; the acceptance zone is
    // the largest multiple of `bound` below 2^128.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if draw <= zone {
            return draw % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let width = (high as $wide).wrapping_sub(low as $wide) as u128;
                let offset = uniform_u128_below(rng, width);
                ((low as $wide as u128).wrapping_add(offset)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let width = (high as $wide).wrapping_sub(low as $wide) as u128;
                if width == u128::MAX {
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let offset = uniform_u128_below(rng, width + 1);
                ((low as $wide as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}
impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let u = unit_open(rng.next_u64()) as $t;
                let v = low + (high - low) * u;
                // Floating rounding can land exactly on `high`; nudge back in.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let u = unit_closed(rng.next_u64()) as $t;
                low + (high - low) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; perturb it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&g));
        }
        // Degenerate inclusive range (jitter_max = 0 in the radio model).
        assert_eq!(rng.gen_range(0u64..=0), 0);
        assert_eq!(rng.gen_range(0.0f64..=0.0), 0.0);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        assert!(([] as [u8; 0]).choose(&mut rng).is_none());
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_dynish(&mut rng);
    }
}
